//! Static linting of logical plans.
//!
//! [`lint_plan`] walks a [`LogicalPlan`] and reports every violated
//! invariant as a typed [`LintDiagnostic`] with a stable `P`-code —
//! the plan-level counterpart of `asp::validate` for dataflow graphs.
//!
//! [`crate::translate::translate`] asserts a lint-clean plan as a
//! debug-mode post-condition, and [`crate::optimizer::explain_with_stats`]
//! lints the plan it annotates, so a mapping or rewrite bug surfaces as a
//! coded diagnostic at the layer that introduced it instead of a wrong
//! answer (or a hang) at execution time.
//!
//! | code | invariant |
//! |------|-----------|
//! | P001 | sliding windows: `0 < slide ≤ size` |
//! | P002 | interval joins: `lower < upper` |
//! | P003 | exclusive interval bounds within `(-W, W)`, i.e. `-W ≤ lower` and `upper ≤ W` |
//! | P004 | every predicate variable bound by the node's layout |
//! | P005 | no duplicate scan variable within a union branch |
//! | P006 | `ByKey` ⇔ a key pair drawn from the join's two sides |
//! | P007 | order-pair variables bound by the join's layout |
//! | P008 | `ats_check` variable bound by the join's right side |
//! | P009 | sliding-join/aggregate window sizes equal the pattern window; hold durations positive and within it |
//! | P010 | unions have at least two inputs |
//! | P011 | aggregates count to at least one |
//! | P012 | join span guard equals the pattern window |
//!
//! ## Window boundary convention
//!
//! The whole stack is **half-open**: `sea::oracle::evaluate_per_window`
//! enumerates windows `[k·s, k·s + W)`, so two co-windowed events differ
//! by *strictly less than* `W`. The runtime agrees — interval-join bounds
//! are EXCLUSIVE (`lower < r.ts − l.ts < upper`, so `upper = W` admits a
//! maximum difference of `W − 1` ms, exactly the half-open maximum) and
//! the physical span guard rejects `span ≥ W`. P003 and P009 pin this
//! convention: interval bounds beyond `±W`, or a sliding-join/aggregate
//! window sized differently from the pattern window, admit (or lose)
//! pairs that no half-open pattern window co-hosts.

use std::fmt;

use sea::predicate::VarId;

use crate::diag::{Diag, DiagCode};
use crate::plan::{JoinWindowing, LogicalPlan, Partitioning, PlanNode};

/// Stable identifier of a plan invariant checked by [`lint_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// P001: a sliding window's slide is zero, negative, or larger than
    /// its size.
    SlidingSlideExceedsSize,
    /// P002: an interval join's lower bound is not strictly below its
    /// upper bound.
    IntervalBoundsInverted,
    /// P003: an interval join's bounds exceed the pattern window `[-W, W]`.
    IntervalExceedsWindow,
    /// P004: a predicate references a variable the node's layout does not
    /// bind.
    UnboundPredicateVar,
    /// P005: two scans in the same union branch bind the same variable.
    DuplicateScanVar,
    /// P006: partitioning and key pair disagree (`ByKey` without a key
    /// pair, `Global` with one, or a key drawn from the wrong side).
    PartitioningKeyMismatch,
    /// P007: an ordering constraint references an unbound variable.
    UnboundOrderPair,
    /// P008: an `ats` check references a variable the right side does not
    /// bind.
    UnboundAtsCheck,
    /// P009: a window duration disagrees with the pattern window — a
    /// sliding-join or aggregate window sized differently from `W`
    /// (admitting or losing pairs the half-open pattern windows
    /// `[k·s, k·s + W)` never co-host), or a non-positive / over-long
    /// hold duration.
    WindowOutOfRange,
    /// P010: a union with fewer than two inputs.
    EmptyUnion,
    /// P011: an aggregate requiring a count of zero (always true).
    AggregateCountZero,
    /// P012: a join's span guard differs from the pattern window.
    SpanMismatch,
}

impl LintCode {
    /// Every code, in `Pxxx` order — the doc-sync test checks DESIGN.md's
    /// code table against this list, so keep it exhaustive.
    pub const ALL: &'static [LintCode] = &[
        LintCode::SlidingSlideExceedsSize,
        LintCode::IntervalBoundsInverted,
        LintCode::IntervalExceedsWindow,
        LintCode::UnboundPredicateVar,
        LintCode::DuplicateScanVar,
        LintCode::PartitioningKeyMismatch,
        LintCode::UnboundOrderPair,
        LintCode::UnboundAtsCheck,
        LintCode::WindowOutOfRange,
        LintCode::EmptyUnion,
        LintCode::AggregateCountZero,
        LintCode::SpanMismatch,
    ];

    /// The stable `Pxxx` string for this code.
    pub fn as_str(&self) -> &'static str {
        match self {
            LintCode::SlidingSlideExceedsSize => "P001",
            LintCode::IntervalBoundsInverted => "P002",
            LintCode::IntervalExceedsWindow => "P003",
            LintCode::UnboundPredicateVar => "P004",
            LintCode::DuplicateScanVar => "P005",
            LintCode::PartitioningKeyMismatch => "P006",
            LintCode::UnboundOrderPair => "P007",
            LintCode::UnboundAtsCheck => "P008",
            LintCode::WindowOutOfRange => "P009",
            LintCode::EmptyUnion => "P010",
            LintCode::AggregateCountZero => "P011",
            LintCode::SpanMismatch => "P012",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl DiagCode for LintCode {
    fn as_str(&self) -> &'static str {
        LintCode::as_str(self)
    }
}

/// One violated plan invariant. All lint findings are errors; the shared
/// [`Diag`] carrier keeps rendering uniform with the G/A/S families.
pub type LintDiagnostic = Diag<LintCode>;

/// Lint a logical plan; an empty result means every invariant holds.
pub fn lint_plan(plan: &LogicalPlan) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    let w = plan.window.size.millis();
    if w <= 0 {
        out.push(LintDiagnostic::error(
            LintCode::WindowOutOfRange,
            "Plan",
            format!("pattern window size must be positive, got {w}ms"),
        ));
    }
    if plan.window.slide.millis() <= 0 || plan.window.slide.millis() > w.max(1) {
        out.push(LintDiagnostic::error(
            LintCode::SlidingSlideExceedsSize,
            "Plan",
            format!(
                "pattern window slide {}ms outside (0, {}ms]",
                plan.window.slide.millis(),
                w
            ),
        ));
    }
    walk(&plan.root, plan, &mut out);
    // Duplicate-scan check per union branch (each branch is its own match
    // scope; across branches the same position legitimately rebinds).
    let mut vars = Vec::new();
    scope_vars(&plan.root, &mut vars, &mut out);
    check_dup(&vars, &mut out);
    out
}

fn check_dup(vars: &[VarId], out: &mut Vec<LintDiagnostic>) {
    let mut sorted = vars.to_vec();
    sorted.sort_unstable();
    if let Some(dup) = sorted.windows(2).find(|w| w[0] == w[1]) {
        out.push(LintDiagnostic::error(
            LintCode::DuplicateScanVar,
            "Scan",
            format!(
                "variable e{} is bound by more than one scan in the same branch",
                dup[0] + 1
            ),
        ));
    }
}

/// Collect the scan variables of one union-free scope; each union input is
/// checked as its own scope and contributes nothing to the parent.
fn scope_vars(node: &PlanNode, vars: &mut Vec<VarId>, out: &mut Vec<LintDiagnostic>) {
    match node {
        PlanNode::Scan { var, .. } => vars.push(*var),
        PlanNode::Join { left, right, .. } => {
            scope_vars(left, vars, out);
            scope_vars(right, vars, out);
        }
        PlanNode::Union { inputs } => {
            for i in inputs {
                let mut branch = Vec::new();
                scope_vars(i, &mut branch, out);
                check_dup(&branch, out);
            }
        }
        PlanNode::Aggregate { input, .. } => scope_vars(input, vars, out),
        PlanNode::NextOccurrence { trigger, .. } => scope_vars(trigger, vars, out),
        PlanNode::Project { input, .. } => scope_vars(input, vars, out),
    }
}

fn lint_windowing(windowing: &JoinWindowing, w_ms: i64, out: &mut Vec<LintDiagnostic>) {
    match windowing {
        JoinWindowing::Sliding { size, slide } => {
            if slide.millis() <= 0 || slide.millis() > size.millis() {
                out.push(LintDiagnostic::error(
                    LintCode::SlidingSlideExceedsSize,
                    "Join",
                    format!(
                        "sliding windowing requires 0 < slide ≤ size, got slide {}ms, size {}ms",
                        slide.millis(),
                        size.millis()
                    ),
                ));
            }
            if size.millis() != w_ms {
                out.push(LintDiagnostic::error(
                    LintCode::WindowOutOfRange,
                    "Join",
                    format!(
                        "sliding join size {}ms must equal the pattern window {}ms: a larger \
                         size admits pairs no half-open window [k·s, k·s + W) co-hosts, a \
                         smaller one silently drops matches",
                        size.millis(),
                        w_ms
                    ),
                ));
            }
        }
        JoinWindowing::Interval { lower, upper } => {
            if lower.millis() >= upper.millis() {
                out.push(LintDiagnostic::error(
                    LintCode::IntervalBoundsInverted,
                    "Join",
                    format!(
                        "interval join requires lower < upper, got [{}ms, {}ms]",
                        lower.millis(),
                        upper.millis()
                    ),
                ));
            }
            if lower.millis() < -w_ms || upper.millis() > w_ms {
                out.push(LintDiagnostic::error(
                    LintCode::IntervalExceedsWindow,
                    "Join",
                    format!(
                        "exclusive interval bounds ({}ms, {}ms) exceed ±{}ms; upper = W is \
                         the half-open maximum (ts diff ≤ W − 1ms), anything wider admits \
                         pairs no window [k·s, k·s + W) co-hosts",
                        lower.millis(),
                        upper.millis(),
                        w_ms
                    ),
                ));
            }
        }
    }
}

fn walk(node: &PlanNode, plan: &LogicalPlan, out: &mut Vec<LintDiagnostic>) {
    let w_ms = plan.window.size.millis();
    match node {
        PlanNode::Scan {
            var, predicates, ..
        } => {
            for p in predicates {
                if !p.vars().iter().all(|v| v == var) {
                    out.push(LintDiagnostic::error(
                        LintCode::UnboundPredicateVar,
                        "Scan",
                        format!(
                            "scan of e{} carries predicate `{p}` referencing other variables",
                            var + 1
                        ),
                    ));
                }
            }
        }
        PlanNode::Join {
            left,
            right,
            windowing,
            partitioning,
            order_pairs,
            predicates,
            span_ms,
            ats_check,
            key_pair,
        } => {
            let ll = left.layout();
            let rl = right.layout();
            let mut merged = ll.clone();
            merged.extend(&rl);

            lint_windowing(windowing, w_ms, out);

            for p in predicates {
                for v in p.vars() {
                    if !merged.contains(&v) {
                        out.push(LintDiagnostic::error(
                            LintCode::UnboundPredicateVar,
                            "Join",
                            format!(
                                "predicate `{p}` references e{}, not bound by {merged:?}",
                                v + 1
                            ),
                        ));
                    }
                }
            }
            for (a, b) in order_pairs {
                if !merged.contains(a) || !merged.contains(b) {
                    out.push(LintDiagnostic::error(
                        LintCode::UnboundOrderPair,
                        "Join",
                        format!(
                            "ordering e{}.ts < e{}.ts references variables not bound by {merged:?}",
                            a + 1,
                            b + 1
                        ),
                    ));
                }
            }
            if let Some(v) = ats_check {
                if !rl.contains(v) {
                    out.push(LintDiagnostic::error(
                        LintCode::UnboundAtsCheck,
                        "Join",
                        format!("ats ≥ e{}.ts but the right side binds {rl:?}", v + 1),
                    ));
                }
            }
            match (partitioning, key_pair) {
                (Partitioning::ByKey, None) => out.push(LintDiagnostic::error(
                    LintCode::PartitioningKeyMismatch,
                    "Join",
                    "ByKey partitioning without a key pair",
                )),
                (Partitioning::Global, Some(_)) => out.push(LintDiagnostic::error(
                    LintCode::PartitioningKeyMismatch,
                    "Join",
                    "Global partitioning with a key pair (the key would never be used)",
                )),
                (Partitioning::ByKey, Some((kl, kr))) => {
                    if !ll.contains(kl) || !rl.contains(kr) {
                        out.push(LintDiagnostic::error(
                            LintCode::PartitioningKeyMismatch,
                            "Join",
                            format!(
                                "key pair (e{}, e{}) not drawn from left {ll:?} / right {rl:?}",
                                kl + 1,
                                kr + 1
                            ),
                        ));
                    }
                }
                (Partitioning::Global, None) => {}
            }
            if *span_ms != w_ms {
                out.push(LintDiagnostic::error(
                    LintCode::SpanMismatch,
                    "Join",
                    format!("span guard {span_ms}ms differs from the pattern window {w_ms}ms"),
                ));
            }
            walk(left, plan, out);
            walk(right, plan, out);
        }
        PlanNode::Union { inputs } => {
            if inputs.len() < 2 {
                out.push(LintDiagnostic::error(
                    LintCode::EmptyUnion,
                    "Union",
                    format!("union has {} input(s); it needs at least two", inputs.len()),
                ));
            }
            for i in inputs {
                walk(i, plan, out);
            }
        }
        PlanNode::Aggregate {
            input, m, window, ..
        } => {
            if *m == 0 {
                out.push(LintDiagnostic::error(
                    LintCode::AggregateCountZero,
                    "Aggregate",
                    "count ≥ 0 holds vacuously; m must be at least 1",
                ));
            }
            if window.slide.millis() <= 0 || window.slide.millis() > window.size.millis() {
                out.push(LintDiagnostic::error(
                    LintCode::SlidingSlideExceedsSize,
                    "Aggregate",
                    format!(
                        "aggregation window requires 0 < slide ≤ size, got slide {}ms, size {}ms",
                        window.slide.millis(),
                        window.size.millis()
                    ),
                ));
            }
            if window.size.millis() != w_ms {
                out.push(LintDiagnostic::error(
                    LintCode::WindowOutOfRange,
                    "Aggregate",
                    format!(
                        "aggregation window size {}ms must equal the pattern window {}ms \
                         (the count is defined over the half-open pattern windows)",
                        window.size.millis(),
                        w_ms
                    ),
                ));
            }
            walk(input, plan, out);
        }
        PlanNode::NextOccurrence { trigger, w, .. } => {
            if w.millis() <= 0 || w.millis() > w_ms {
                out.push(LintDiagnostic::error(
                    LintCode::WindowOutOfRange,
                    "NextOccurrence",
                    format!("hold duration {}ms outside (0, {}ms]", w.millis(), w_ms),
                ));
            }
            walk(trigger, plan, out);
        }
        // Layout permutation validity is the typechecker's job (S004);
        // the lint invariants all hold trivially for a pure reorder.
        PlanNode::Project { input, .. } => walk(input, plan, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::{Attr, EventType};
    use asp::time::Duration;
    use sea::pattern::{Leaf, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    fn scan(t: u16, var: VarId) -> PlanNode {
        PlanNode::Scan {
            etype: EventType(t),
            type_name: format!("T{t}"),
            leaf: Leaf::new(EventType(t), format!("T{t}"), format!("e{}", var + 1)),
            var,
            predicates: vec![],
        }
    }

    fn join(left: PlanNode, right: PlanNode) -> PlanNode {
        PlanNode::Join {
            left: Box::new(left),
            right: Box::new(right),
            windowing: JoinWindowing::Sliding {
                size: Duration::from_minutes(4),
                slide: Duration::from_minutes(1),
            },
            partitioning: Partitioning::Global,
            order_pairs: vec![],
            predicates: vec![],
            span_ms: 4 * asp::time::MINUTE_MS,
            ats_check: None,
            key_pair: None,
        }
    }

    fn plan(root: PlanNode) -> LogicalPlan {
        LogicalPlan {
            root,
            positions: 2,
            mapping: "test".into(),
            window: WindowSpec::minutes(4),
        }
    }

    fn codes(p: &LogicalPlan) -> Vec<LintCode> {
        lint_plan(p).into_iter().map(|d| d.code).collect()
    }

    /// Mutate the root join in place.
    fn with_join(f: impl FnOnce(&mut PlanNode)) -> LogicalPlan {
        let mut root = join(scan(0, 0), scan(1, 1));
        f(&mut root);
        plan(root)
    }

    #[test]
    fn clean_plan_lints_empty() {
        assert!(lint_plan(&plan(join(scan(0, 0), scan(1, 1)))).is_empty());
    }

    #[test]
    fn p001_sliding_slide_exceeds_size() {
        let p = with_join(|j| {
            if let PlanNode::Join { windowing, .. } = j {
                *windowing = JoinWindowing::Sliding {
                    size: Duration::from_minutes(2),
                    slide: Duration::from_minutes(5),
                };
            }
        });
        assert!(codes(&p).contains(&LintCode::SlidingSlideExceedsSize));
    }

    #[test]
    fn p002_interval_bounds_inverted() {
        let p = with_join(|j| {
            if let PlanNode::Join { windowing, .. } = j {
                *windowing = JoinWindowing::Interval {
                    lower: Duration::from_minutes(4),
                    upper: Duration::ZERO,
                };
            }
        });
        assert!(codes(&p).contains(&LintCode::IntervalBoundsInverted));
    }

    #[test]
    fn p003_interval_exceeds_window() {
        let p = with_join(|j| {
            if let PlanNode::Join { windowing, .. } = j {
                *windowing = JoinWindowing::Interval {
                    lower: Duration::ZERO,
                    upper: Duration::from_minutes(99),
                };
            }
        });
        assert!(codes(&p).contains(&LintCode::IntervalExceedsWindow));
    }

    #[test]
    fn p004_unbound_predicate_var() {
        let p = with_join(|j| {
            if let PlanNode::Join { predicates, .. } = j {
                predicates.push(Predicate::cross(0, Attr::Value, CmpOp::Le, 7, Attr::Value));
            }
        });
        let ds = lint_plan(&p);
        let d = ds
            .iter()
            .find(|d| d.code == LintCode::UnboundPredicateVar)
            .expect("P004");
        assert!(d.message.contains("e8"), "{}", d.message);
    }

    #[test]
    fn p004_scan_predicate_referencing_other_var() {
        let mut s = scan(0, 0);
        if let PlanNode::Scan { predicates, .. } = &mut s {
            predicates.push(Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value));
        }
        let p = plan(join(s, scan(1, 1)));
        assert!(codes(&p).contains(&LintCode::UnboundPredicateVar));
    }

    #[test]
    fn p005_duplicate_scan_var() {
        let p = plan(join(scan(0, 0), scan(1, 0)));
        assert!(codes(&p).contains(&LintCode::DuplicateScanVar));
    }

    #[test]
    fn p005_rebinding_across_union_branches_is_allowed() {
        let u = PlanNode::Union {
            inputs: vec![join(scan(0, 0), scan(1, 1)), join(scan(0, 0), scan(2, 1))],
        };
        assert!(lint_plan(&plan(u)).is_empty());
    }

    #[test]
    fn p006_partitioning_key_mismatch() {
        let p = with_join(|j| {
            if let PlanNode::Join { partitioning, .. } = j {
                *partitioning = Partitioning::ByKey; // no key_pair
            }
        });
        assert!(codes(&p).contains(&LintCode::PartitioningKeyMismatch));
        let p = with_join(|j| {
            if let PlanNode::Join { key_pair, .. } = j {
                *key_pair = Some((0, 1)); // Global with a key pair
            }
        });
        assert!(codes(&p).contains(&LintCode::PartitioningKeyMismatch));
        let p = with_join(|j| {
            if let PlanNode::Join {
                partitioning,
                key_pair,
                ..
            } = j
            {
                *partitioning = Partitioning::ByKey;
                *key_pair = Some((1, 0)); // sides swapped
            }
        });
        assert!(codes(&p).contains(&LintCode::PartitioningKeyMismatch));
    }

    #[test]
    fn p007_unbound_order_pair() {
        let p = with_join(|j| {
            if let PlanNode::Join { order_pairs, .. } = j {
                order_pairs.push((0, 9));
            }
        });
        assert!(codes(&p).contains(&LintCode::UnboundOrderPair));
    }

    #[test]
    fn p008_unbound_ats_check() {
        let p = with_join(|j| {
            if let PlanNode::Join { ats_check, .. } = j {
                *ats_check = Some(0); // bound by the LEFT side, not the right
            }
        });
        assert!(codes(&p).contains(&LintCode::UnboundAtsCheck));
    }

    #[test]
    fn p009_window_out_of_range() {
        // NextOccurrence holding longer than the pattern window.
        let n = PlanNode::NextOccurrence {
            trigger: Box::new(scan(0, 0)),
            marker: Leaf::new(EventType(5), "M", "m"),
            w: Duration::from_minutes(99),
        };
        let p = plan(join(n, scan(1, 1)));
        assert!(codes(&p).contains(&LintCode::WindowOutOfRange));
        // Non-positive pattern window.
        let mut p = plan(join(scan(0, 0), scan(1, 1)));
        p.window.size = Duration::ZERO;
        assert!(codes(&p).contains(&LintCode::WindowOutOfRange));
    }

    #[test]
    fn p009_sliding_join_size_must_equal_pattern_window() {
        // Regression (boundary convention): a sliding join sized 2W admits
        // pairs up to 2W − 1ms apart, which no half-open pattern window
        // [k·s, k·s + W) ever co-hosts; size W/2 loses matches. Both are
        // P009, independent of the P001 slide rule.
        let p = with_join(|j| {
            if let PlanNode::Join { windowing, .. } = j {
                *windowing = JoinWindowing::Sliding {
                    size: Duration::from_minutes(8), // pattern window is 4
                    slide: Duration::from_minutes(1),
                };
            }
        });
        assert!(codes(&p).contains(&LintCode::WindowOutOfRange));
        let p = with_join(|j| {
            if let PlanNode::Join { windowing, .. } = j {
                *windowing = JoinWindowing::Sliding {
                    size: Duration::from_minutes(2),
                    slide: Duration::from_minutes(1),
                };
            }
        });
        assert!(codes(&p).contains(&LintCode::WindowOutOfRange));
    }

    #[test]
    fn p009_aggregate_window_must_equal_pattern_window() {
        let a = PlanNode::Aggregate {
            input: Box::new(scan(0, 0)),
            m: 2,
            window: WindowSpec::minutes(8), // pattern window is 4
            partitioning: Partitioning::Global,
        };
        assert!(codes(&plan(a)).contains(&LintCode::WindowOutOfRange));
    }

    #[test]
    fn interval_upper_equal_to_window_is_half_open_clean() {
        // Regression (boundary convention): the interval bounds are
        // EXCLUSIVE, so upper = W caps the ts difference at W − 1ms —
        // exactly the half-open maximum. This must lint clean; one
        // millisecond more must not.
        let p = with_join(|j| {
            if let PlanNode::Join { windowing, .. } = j {
                *windowing = JoinWindowing::Interval {
                    lower: Duration::ZERO,
                    upper: Duration::from_minutes(4), // == pattern window
                };
            }
        });
        assert!(lint_plan(&p).is_empty(), "{:?}", lint_plan(&p));
        let p = with_join(|j| {
            if let PlanNode::Join { windowing, .. } = j {
                *windowing = JoinWindowing::Interval {
                    lower: Duration::ZERO,
                    upper: Duration::from_millis(4 * asp::time::MINUTE_MS + 1),
                };
            }
        });
        assert!(codes(&p).contains(&LintCode::IntervalExceedsWindow));
    }

    #[test]
    fn p010_empty_union() {
        let p = plan(PlanNode::Union {
            inputs: vec![scan(0, 0)],
        });
        assert!(codes(&p).contains(&LintCode::EmptyUnion));
    }

    #[test]
    fn p011_aggregate_count_zero() {
        let a = PlanNode::Aggregate {
            input: Box::new(scan(0, 0)),
            m: 0,
            window: WindowSpec::minutes(4),
            partitioning: Partitioning::Global,
        };
        let p = plan(a);
        assert!(codes(&p).contains(&LintCode::AggregateCountZero));
    }

    #[test]
    fn p012_span_mismatch() {
        let p = with_join(|j| {
            if let PlanNode::Join { span_ms, .. } = j {
                *span_ms = 123;
            }
        });
        assert!(codes(&p).contains(&LintCode::SpanMismatch));
    }

    #[test]
    fn diagnostics_render_with_code_and_node() {
        let d = LintDiagnostic::error(LintCode::SpanMismatch, "Join", "span guard differs");
        assert_eq!(d.to_string(), "P012 error at Join: span guard differs");
    }
}
