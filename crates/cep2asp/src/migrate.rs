//! Migration-safety analysis (`M`-codes) for the sharded executor.
//!
//! The fifth static-analysis layer, alongside the graph validator
//! (`G`-codes), the plan linter (`P`-codes, [`crate::lint`]), the cost
//! analyzer (`A`-codes, [`mod@crate::analyze`]), and the schema/partition
//! typechecker (`S`-codes, [`mod@crate::typecheck`]). Where the `S`-pass
//! decides *whether* an operator may be sharded by key, this pass decides
//! whether a sharded deployment can *move* that operator's state at
//! runtime: the shard runtime's 4-step migration protocol (publish →
//! drain → handoff → replay; see `asp::runtime::shard` and the `asp::sim`
//! model checker) only works for operators that implement the live
//! state-handoff hooks, and it imposes per-plan obligations — marker
//! need-sets to drain, stash memory to buffer re-routed tuples — that are
//! knowable at translate time.
//!
//! The pass probes *real* operator instances for
//! `Operator::shard_handoff_supported` (constructing a representative
//! `WindowJoinOp` / `IntervalJoinOp` / `WindowAggregateOp` per plan node),
//! so the verdicts can never drift from the runtime's actual capability
//! surface. All findings are warnings: every plan still runs, but a
//! deployment that ignores them either cannot rebalance (M001/M002), may
//! pause unboundedly during a drain (M006), or leaves throughput on the
//! table (M004).
//!
//! | code | deployment hazard |
//! |------|-------------------|
//! | M001 | shardable node whose operator lacks live state handoff |
//! | M002 | adaptive rebalancing requested over a non-migratable operator |
//! | M003 | per-node migration obligations (marker need-set, stash bound) |
//! | M004 | global-only node pins a multi-shard deployment to one instance |
//! | M005 | adaptive rebalancing enabled with nothing to rebalance |
//! | M006 | unbounded handoff payload — drain pause is O(state) |
//! | M007 | several sharded nodes share one serialized migration lane |
//! | M008 | columnar batch buffers straddle the marker cut during a drain |
//!
//! The pass is wired into [`crate::explain::explain_analyzed`] (under the
//! default, single-shard [`MigrateConfig`], where only the
//! config-independent M001 can fire) and into `plan-explain --schema` /
//! `--schema-json`, which evaluate the suite under a hypothetical
//! multi-shard adaptive deployment.

use std::fmt;

use asp::operator::{
    cross_join, IntervalBounds, IntervalJoinOp, Operator, WindowAggregateOp, WindowJoinOp,
};
use asp::tuple::TsRule;
use asp::window::SlidingWindows;

use crate::diag::{Diag, DiagCode};
use crate::plan::{JoinWindowing, LogicalPlan, PlanNode};
use crate::typecheck::{ShardSafety, TypecheckResult, TypedNode};

/// Stable identifier of a migration-safety hazard found by
/// [`migration_safety`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrateCode {
    /// M001: a shardable-by-key node whose physical operator does not
    /// implement live state handoff (`shard_handoff_supported` is false) —
    /// the node can be sharded statically, but its slots can never
    /// migrate.
    HandoffUnsupported,
    /// M002: the deployment requests adaptive rebalancing over a sharded
    /// node that cannot migrate — the rebalancer detects the hot slot but
    /// every `begin_migration` it publishes stalls at the handoff step.
    AdaptivePinned,
    /// M003: the per-node migration obligations — how many (port ×
    /// channel) markers a drain must collect before cut-over, and the
    /// stash bound for tuples re-routed mid-migration. Informational.
    MigrationObligations,
    /// M004: a global-only stateful node under a multi-shard deployment —
    /// every tuple funnels through one instance regardless of the shard
    /// count.
    GlobalUnderShards,
    /// M005: adaptive rebalancing is enabled but the plan has no sharded
    /// operator (or the deployment has a single shard) — the rebalancer
    /// thread only burns cycles.
    RebalancerIdle,
    /// M006: a migratable node with no memory limit — the handoff payload
    /// (and so the drain's watermark-freeze window) is unbounded.
    UnboundedHandoffState,
    /// M007: several shardable nodes in one plan — migrations are
    /// serialized per plan, so concurrent hot spots on different
    /// operators queue behind each other.
    MultipleShardedNodes,
    /// M008: columnar data plane under a multi-shard deployment — batch
    /// buffers straddle the marker cut, so every drain forces an early
    /// flush at the migration boundary.
    ColumnarDrainBoundary,
}

impl MigrateCode {
    /// Every code, in `Mxxx` order — the doc-sync test checks DESIGN.md's
    /// code table against this list, so keep it exhaustive.
    pub const ALL: &'static [MigrateCode] = &[
        MigrateCode::HandoffUnsupported,
        MigrateCode::AdaptivePinned,
        MigrateCode::MigrationObligations,
        MigrateCode::GlobalUnderShards,
        MigrateCode::RebalancerIdle,
        MigrateCode::UnboundedHandoffState,
        MigrateCode::MultipleShardedNodes,
        MigrateCode::ColumnarDrainBoundary,
    ];

    /// The stable `Mxxx` string for this code.
    pub fn as_str(&self) -> &'static str {
        match self {
            MigrateCode::HandoffUnsupported => "M001",
            MigrateCode::AdaptivePinned => "M002",
            MigrateCode::MigrationObligations => "M003",
            MigrateCode::GlobalUnderShards => "M004",
            MigrateCode::RebalancerIdle => "M005",
            MigrateCode::UnboundedHandoffState => "M006",
            MigrateCode::MultipleShardedNodes => "M007",
            MigrateCode::ColumnarDrainBoundary => "M008",
        }
    }
}

impl fmt::Display for MigrateCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl DiagCode for MigrateCode {
    fn as_str(&self) -> &'static str {
        MigrateCode::as_str(self)
    }
}

/// One migration-safety finding. All findings are warnings — the plan
/// runs either way; the deployment just cannot (fully) rebalance.
pub type MigrateDiagnostic = Diag<MigrateCode>;

/// The hypothetical deployment the plan is checked against.
///
/// `Default` is the all-off single-shard deployment: only capability
/// findings (M001) apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrateConfig {
    /// Shard instances per shardable node; `None` (or `Some(1)`) means a
    /// single-shard deployment where only capability findings (M001)
    /// apply.
    pub shards: Option<usize>,
    /// Whether the adaptive hot-key rebalancer is enabled.
    pub adaptive: bool,
    /// Whether the columnar (SoA) data plane is enabled.
    pub columnar: bool,
    /// Per-operator memory limit (bounds the handoff payload), bytes.
    pub memory_limit: Option<usize>,
}

impl MigrateConfig {
    /// A representative multi-shard adaptive deployment — what
    /// `plan-explain --schema` evaluates the suite against.
    pub fn sharded(shards: usize) -> Self {
        MigrateConfig {
            shards: Some(shards),
            adaptive: true,
            columnar: false,
            memory_limit: None,
        }
    }

    fn shard_count(&self) -> usize {
        self.shards.unwrap_or(1)
    }
}

/// Probe whether `node`'s physical operator supports live state handoff,
/// by constructing a representative instance and asking it. Returns `None`
/// for nodes the physical planner never shards (scans, unions, the NSEQ
/// UDF, projections — stateless or global-only by construction).
fn handoff_capable(node: &PlanNode) -> Option<bool> {
    match node {
        PlanNode::Join { windowing, .. } => {
            let op: Box<dyn Operator> = match *windowing {
                JoinWindowing::Sliding { size, slide } => Box::new(WindowJoinOp::new(
                    "probe",
                    SlidingWindows::new(size, slide),
                    cross_join(),
                    TsRule::Min,
                )),
                JoinWindowing::Interval { lower, upper } => Box::new(IntervalJoinOp::new(
                    "probe",
                    IntervalBounds { lower, upper },
                    cross_join(),
                    TsRule::Min,
                )),
            };
            Some(op.shard_handoff_supported())
        }
        PlanNode::Aggregate { m, window, .. } => {
            let op = WindowAggregateOp::count_at_least(
                "probe",
                SlidingWindows::new(window.size, window.slide),
                *m,
            );
            Some(op.shard_handoff_supported())
        }
        _ => None,
    }
}

/// The number of input ports a node's physical operator drains markers
/// from (its plan-tree fan-in).
fn input_ports(node: &PlanNode) -> usize {
    match node {
        PlanNode::Scan { .. } => 0,
        PlanNode::Join { .. } => 2,
        PlanNode::Union { inputs } => inputs.len(),
        PlanNode::Aggregate { .. } | PlanNode::Project { .. } => 1,
        // Trigger input + the physical marker scan.
        PlanNode::NextOccurrence { .. } => 2,
    }
}

struct Walk<'a> {
    cfg: &'a MigrateConfig,
    diags: Vec<MigrateDiagnostic>,
    shardable: usize,
}

impl Walk<'_> {
    fn warn(&mut self, code: MigrateCode, node: &str, msg: String) {
        self.diags.push(MigrateDiagnostic::warning(code, node, msg));
    }

    fn visit(&mut self, plan: &PlanNode, typed: &TypedNode) {
        let shards = self.cfg.shard_count();
        match typed.safety {
            ShardSafety::ShardableByKey => {
                self.shardable += 1;
                let capable = handoff_capable(plan).unwrap_or(false);
                if !capable {
                    self.warn(
                        MigrateCode::HandoffUnsupported,
                        &typed.label,
                        "operator does not support live state handoff \
                         (shard_handoff_supported = false) — shardable statically, \
                         but its slots can never migrate"
                            .to_string(),
                    );
                    if shards > 1 && self.cfg.adaptive {
                        self.warn(
                            MigrateCode::AdaptivePinned,
                            &typed.label,
                            format!(
                                "adaptive rebalancing over {shards} shards cannot move \
                                 this operator's state — hot slots stay pinned to \
                                 their initial placement"
                            ),
                        );
                    }
                }
                if shards > 1 {
                    let ports = input_ports(plan);
                    let stash = match self.cfg.memory_limit {
                        Some(b) => format!("≤ {b} B (operator memory limit)"),
                        None => "unbounded".to_string(),
                    };
                    self.warn(
                        MigrateCode::MigrationObligations,
                        &typed.label,
                        format!(
                            "each migration drains a need-set of {ports}×{shards} \
                             (port × channel) markers before cut-over; \
                             stash bound {stash}"
                        ),
                    );
                    if capable && self.cfg.adaptive && self.cfg.memory_limit.is_none() {
                        self.warn(
                            MigrateCode::UnboundedHandoffState,
                            &typed.label,
                            "no memory limit bounds the handoff payload — the drain's \
                             watermark-freeze window is O(operator state)"
                                .to_string(),
                        );
                    }
                    if self.cfg.columnar {
                        self.warn(
                            MigrateCode::ColumnarDrainBoundary,
                            &typed.label,
                            "columnar batch buffers straddle the marker cut — every \
                             drain forces an early batch flush at the migration \
                             boundary"
                                .to_string(),
                        );
                    }
                }
            }
            ShardSafety::GlobalOnly => {
                if shards > 1 {
                    self.warn(
                        MigrateCode::GlobalUnderShards,
                        &typed.label,
                        format!(
                            "global-only node under a {shards}-shard deployment — \
                             every tuple funnels through one instance"
                        ),
                    );
                }
            }
            ShardSafety::Stateless => {}
        }
        for (i, c) in typed.children.iter().enumerate() {
            if let Some(p) = plan_child(plan, i) {
                self.visit(p, c);
            }
        }
    }
}

/// The `i`-th plan child, mirroring the typechecker's child order.
fn plan_child(node: &PlanNode, i: usize) -> Option<&PlanNode> {
    match node {
        PlanNode::Scan { .. } => None,
        PlanNode::Join { left, right, .. } => match i {
            0 => Some(left),
            1 => Some(right),
            _ => None,
        },
        PlanNode::Union { inputs } => inputs.get(i),
        PlanNode::Aggregate { input, .. } => (i == 0).then(|| input.as_ref()),
        PlanNode::NextOccurrence { trigger, .. } => (i == 0).then(|| trigger.as_ref()),
        PlanNode::Project { input, .. } => (i == 0).then(|| input.as_ref()),
    }
}

/// Analyze `plan` (typed by [`crate::typecheck::typecheck`]) against a
/// hypothetical deployment `cfg` and return every migration-safety
/// finding, in walk order. All findings are warnings.
pub fn migration_safety(
    plan: &LogicalPlan,
    typed: &TypecheckResult,
    cfg: &MigrateConfig,
) -> Vec<MigrateDiagnostic> {
    let mut w = Walk {
        cfg,
        diags: Vec::new(),
        shardable: 0,
    };
    w.visit(&plan.root, &typed.root);
    let shards = cfg.shard_count();
    if cfg.adaptive && (shards <= 1 || w.shardable == 0) {
        w.diags.push(MigrateDiagnostic::warning(
            MigrateCode::RebalancerIdle,
            typed.root.label.clone(),
            if shards <= 1 {
                "adaptive rebalancing enabled on a single-shard deployment — \
                 the rebalancer has nothing to move"
                    .to_string()
            } else {
                "adaptive rebalancing enabled but the plan has no shardable \
                 operator — the rebalancer only burns cycles"
                    .to_string()
            },
        ));
    }
    if shards > 1 && w.shardable >= 2 {
        w.diags.push(MigrateDiagnostic::warning(
            MigrateCode::MultipleShardedNodes,
            typed.root.label.clone(),
            format!(
                "{} shardable nodes share one serialized migration lane — \
                 concurrent hot spots on different operators queue behind \
                 each other",
                w.shardable
            ),
        ));
    }
    w.diags
}

/// Serialize findings as a JSON array (hand-rolled — this crate carries no
/// serialization dependency), for the `plan-explain --schema-json`
/// artifact.
pub fn migration_json(diags: &[MigrateDiagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":{},\"severity\":{},\"node\":{},\"message\":{}}}",
            json_str(d.code.as_str()),
            json_str(&d.severity.to_string()),
            json_str(&d.node),
            json_str(&d.message)
        ));
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::EventType;
    use asp::time::Duration;
    use sea::pattern::{Leaf, WindowSpec};
    use sea::predicate::{Predicate, VarId};

    use crate::plan::Partitioning;
    use crate::typecheck::typecheck;

    fn scan(t: u16, var: VarId) -> PlanNode {
        PlanNode::Scan {
            etype: EventType(t),
            type_name: format!("T{t}"),
            leaf: Leaf::new(EventType(t), format!("T{t}"), format!("e{}", var + 1)),
            var,
            predicates: vec![],
        }
    }

    fn bykey_join(windowing: JoinWindowing) -> PlanNode {
        PlanNode::Join {
            left: Box::new(scan(0, 0)),
            right: Box::new(scan(1, 1)),
            windowing,
            partitioning: Partitioning::ByKey,
            order_pairs: vec![],
            predicates: vec![Predicate::same_id(0, 1)],
            span_ms: 4 * asp::time::MINUTE_MS,
            ats_check: None,
            key_pair: Some((0, 1)),
        }
    }

    fn bykey_aggregate() -> PlanNode {
        PlanNode::Aggregate {
            input: Box::new(scan(0, 0)),
            m: 3,
            window: WindowSpec::minutes(4),
            partitioning: Partitioning::ByKey,
        }
    }

    fn plan(root: PlanNode) -> LogicalPlan {
        LogicalPlan {
            root,
            positions: 2,
            mapping: "test".into(),
            window: WindowSpec::minutes(4),
        }
    }

    fn codes(p: &LogicalPlan, cfg: &MigrateConfig) -> Vec<MigrateCode> {
        let typed = typecheck(p);
        migration_safety(p, &typed, cfg)
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn m001_fires_on_non_handoff_shardable_node() {
        // WindowAggregateOp has no live handoff: M001 even on the default
        // (single-shard) config.
        let p = plan(bykey_aggregate());
        assert_eq!(
            codes(&p, &MigrateConfig::default()),
            vec![MigrateCode::HandoffUnsupported]
        );
    }

    #[test]
    fn m001_m002_absent_on_handoff_capable_joins() {
        // Both join operators implement live handoff, so a sharded
        // adaptive deployment only reports the obligations note (M003)
        // and the unbounded-payload warning (M006).
        for windowing in [
            JoinWindowing::Sliding {
                size: Duration::from_minutes(4),
                slide: Duration::from_minutes(1),
            },
            JoinWindowing::Interval {
                lower: Duration::from_minutes(-4),
                upper: Duration::from_minutes(4),
            },
        ] {
            let p = plan(bykey_join(windowing));
            assert_eq!(codes(&p, &MigrateConfig::default()), vec![]);
            assert_eq!(
                codes(&p, &MigrateConfig::sharded(8)),
                vec![
                    MigrateCode::MigrationObligations,
                    MigrateCode::UnboundedHandoffState,
                ]
            );
        }
    }

    #[test]
    fn m002_fires_only_under_adaptive_shards() {
        let p = plan(bykey_aggregate());
        let found = codes(&p, &MigrateConfig::sharded(8));
        assert!(
            found.contains(&MigrateCode::HandoffUnsupported),
            "{found:?}"
        );
        assert!(found.contains(&MigrateCode::AdaptivePinned), "{found:?}");
        // Static sharding (no rebalancer) never migrates: no M002.
        let static_cfg = MigrateConfig {
            shards: Some(8),
            ..MigrateConfig::default()
        };
        let found = codes(&p, &static_cfg);
        assert!(!found.contains(&MigrateCode::AdaptivePinned), "{found:?}");
    }

    #[test]
    fn m003_reports_need_set_and_stash_bound() {
        let p = plan(bykey_join(JoinWindowing::Sliding {
            size: Duration::from_minutes(4),
            slide: Duration::from_minutes(1),
        }));
        let typed = typecheck(&p);
        let cfg = MigrateConfig {
            memory_limit: Some(1 << 20),
            ..MigrateConfig::sharded(4)
        };
        let diags = migration_safety(&p, &typed, &cfg);
        let m003 = diags
            .iter()
            .find(|d| d.code == MigrateCode::MigrationObligations)
            .expect("M003 present");
        assert!(m003.message.contains("2×4"), "{}", m003.message);
        assert!(m003.message.contains("1048576 B"), "{}", m003.message);
        // The memory limit also discharges M006.
        assert!(
            !diags
                .iter()
                .any(|d| d.code == MigrateCode::UnboundedHandoffState),
            "{diags:?}"
        );
    }

    #[test]
    fn m004_m007_fire_on_mixed_and_repeated_shardable_nodes() {
        // global join over two ByKey aggregates: one global-only node,
        // two shardable ones.
        let root = PlanNode::Join {
            left: Box::new(bykey_aggregate()),
            right: Box::new(PlanNode::Aggregate {
                input: Box::new(scan(1, 1)),
                m: 2,
                window: WindowSpec::minutes(4),
                partitioning: Partitioning::ByKey,
            }),
            windowing: JoinWindowing::Sliding {
                size: Duration::from_minutes(4),
                slide: Duration::from_minutes(4),
            },
            partitioning: Partitioning::Global,
            order_pairs: vec![],
            predicates: vec![],
            span_ms: 4 * asp::time::MINUTE_MS,
            ats_check: None,
            key_pair: None,
        };
        let found = codes(&plan(root), &MigrateConfig::sharded(4));
        assert!(found.contains(&MigrateCode::GlobalUnderShards), "{found:?}");
        assert!(
            found.contains(&MigrateCode::MultipleShardedNodes),
            "{found:?}"
        );
    }

    #[test]
    fn m005_fires_when_rebalancer_has_no_work() {
        // Adaptive on a single shard…
        let p = plan(bykey_aggregate());
        let cfg = MigrateConfig {
            adaptive: true,
            ..MigrateConfig::default()
        };
        assert!(codes(&p, &cfg).contains(&MigrateCode::RebalancerIdle));
        // …or over a plan with nothing shardable.
        let global = plan(PlanNode::Aggregate {
            input: Box::new(scan(0, 0)),
            m: 2,
            window: WindowSpec::minutes(4),
            partitioning: Partitioning::Global,
        });
        assert!(codes(&global, &MigrateConfig::sharded(4)).contains(&MigrateCode::RebalancerIdle));
    }

    #[test]
    fn m008_fires_on_columnar_sharded_nodes() {
        let p = plan(bykey_join(JoinWindowing::Sliding {
            size: Duration::from_minutes(4),
            slide: Duration::from_minutes(1),
        }));
        let cfg = MigrateConfig {
            columnar: true,
            ..MigrateConfig::sharded(4)
        };
        assert!(codes(&p, &cfg).contains(&MigrateCode::ColumnarDrainBoundary));
    }

    #[test]
    fn codes_are_dense_and_render_uniformly() {
        for (i, c) in MigrateCode::ALL.iter().enumerate() {
            assert_eq!(c.as_str(), format!("M{:03}", i + 1));
        }
        let d =
            MigrateDiagnostic::warning(MigrateCode::HandoffUnsupported, "Join", "no live handoff");
        assert_eq!(d.to_string(), "M001 warning at Join: no live handoff");
    }

    #[test]
    fn migration_json_escapes_and_balances() {
        let diags = vec![MigrateDiagnostic::warning(
            MigrateCode::MigrationObligations,
            "Join \"q\"",
            "need-set 2×4",
        )];
        let j = migration_json(&diags);
        assert!(j.starts_with('[') && j.ends_with(']'), "{j}");
        assert!(j.contains("\\\"q\\\""), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        assert_eq!(migration_json(&[]), "[]");
    }
}
