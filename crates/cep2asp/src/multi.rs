//! Multi-pattern execution: several patterns in one dataflow job with
//! shared subplans.
//!
//! The paper's related-work section lists multi-query optimization among
//! the capabilities serial CEP systems lack ("Other limitations are …
//! multi-query optimization for serial processing models", Section 6) —
//! and one advantage of mapping patterns onto an ASPS is that ordinary
//! multi-query techniques apply. All patterns of a batch run inside one
//! executor job, each with its own sink; by default the physical build
//! interns structurally equal subtrees ([`crate::share`]) so overlapping
//! patterns share scans, filters, and join state, with the runtime
//! fanning the shared nodes' output out to every consumer (`Arc`ed
//! batches, no payload copies). [`MultiOptions::share`] turns the pass
//! off for the isolated-pipelines baseline the benchmarks compare
//! against.

use std::collections::HashMap;
use std::sync::Arc;

use asp::event::{Event, EventType};
use asp::graph::SinkId;
use asp::runtime::{Executor, ExecutorConfig, RunReport};
use asp::tuple::MatchKey;

use sea::pattern::Pattern;

use crate::exec::{dedup_sorted, ExecError};
use crate::physical::{build_multi_pipeline, PhysicalConfig, SourceCatalog};
use crate::plan::LogicalPlan;
use crate::share::ShareReport;
use crate::translate::{translate, MapperOptions};

/// One pattern of a multi-pattern job.
pub struct PatternJob {
    /// Label used in reports and sink naming.
    pub name: String,
    /// The pattern to evaluate.
    pub pattern: Pattern,
    /// Mapping options for this pattern (may differ per job).
    pub opts: MapperOptions,
}

impl PatternJob {
    /// Bundle a named pattern with its mapping options.
    pub fn new(name: impl Into<String>, pattern: Pattern, opts: MapperOptions) -> Self {
        PatternJob {
            name: name.into(),
            pattern,
            opts,
        }
    }
}

/// Knobs of a multi-pattern run.
#[derive(Debug, Clone)]
pub struct MultiOptions {
    /// Merge structurally equal subtrees across patterns before lowering
    /// (on by default). Off = N fully independent pipelines in one job —
    /// the isolated-splice baseline.
    pub share: bool,
}

impl Default for MultiOptions {
    fn default() -> Self {
        MultiOptions { share: true }
    }
}

/// The result of a multi-pattern run: the shared report plus per-pattern
/// plans and sinks.
pub struct MultiRun {
    /// The shared executor report covering every pattern's nodes.
    pub report: RunReport,
    /// What the sharing pass merged (per-consumer attribution of shared
    /// nodes, nodes/scans before vs. after, and the predicted source
    /// volume). With [`MultiOptions::share`] off this reports zero
    /// sharing.
    pub share: ShareReport,
    per_pattern: Vec<(String, LogicalPlan, SinkId)>,
}

impl MultiRun {
    /// Names in submission order.
    pub fn names(&self) -> Vec<&str> {
        self.per_pattern
            .iter()
            .map(|(n, _, _)| n.as_str())
            .collect()
    }

    /// The executed plan of a pattern.
    pub fn plan(&self, name: &str) -> Option<&LogicalPlan> {
        self.per_pattern
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, p, _)| p)
    }

    /// Raw match count of a pattern (including sliding-window duplicates).
    pub fn raw_count(&self, name: &str) -> u64 {
        self.per_pattern
            .iter()
            .find(|(n, _, _)| n == name)
            .map_or(0, |(_, _, s)| self.report.sink_count(*s))
    }

    /// Canonical deduplicated matches of a pattern.
    pub fn dedup_matches(&self, name: &str) -> Vec<MatchKey> {
        self.per_pattern
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, s)| dedup_sorted(self.report.sink(*s)))
            .unwrap_or_default()
    }
}

/// `Arc` a plain per-type stream map into a [`SourceCatalog`]: one copy
/// per stream, once — after this, registering the catalog with any
/// number of patterns/runs is O(types).
pub fn shared_catalog(sources: &HashMap<EventType, Vec<Event>>) -> SourceCatalog {
    sources
        .iter()
        .map(|(t, v)| (*t, Arc::new(v.clone())))
        .collect()
}

/// Run several patterns over the same sources in one job, with shared
/// subplans (the defaults of [`MultiOptions`]). Convenience wrapper over
/// [`run_patterns_with`]; `Arc`s each stream once — callers holding a
/// [`SourceCatalog`] already avoid even that.
pub fn run_patterns(
    jobs: &[PatternJob],
    sources: &HashMap<EventType, Vec<Event>>,
    phys: &PhysicalConfig,
    exec: &ExecutorConfig,
) -> Result<MultiRun, ExecError> {
    run_patterns_with(
        jobs,
        &shared_catalog(sources),
        phys,
        exec,
        &MultiOptions::default(),
    )
}

/// Run several patterns over a shared source catalog in one job.
///
/// Setup is O(patterns): event arrays are never copied (missing input
/// types are registered as empty streams, mirroring solo runs), and the
/// whole batch is lowered by one builder so structurally equal subtrees
/// are shared when `opts.share` is on.
pub fn run_patterns_with(
    jobs: &[PatternJob],
    sources: &SourceCatalog,
    phys: &PhysicalConfig,
    exec: &ExecutorConfig,
    opts: &MultiOptions,
) -> Result<MultiRun, ExecError> {
    assert!(!jobs.is_empty(), "at least one pattern required");
    let mut catalog = sources.clone();
    for j in jobs {
        for t in j.pattern.expr.input_types() {
            catalog.entry(t).or_default();
        }
    }

    let mut plans = Vec::with_capacity(jobs.len());
    for job in jobs {
        plans.push(translate(&job.pattern, &job.opts)?);
    }
    let named: Vec<(&str, &LogicalPlan)> = jobs
        .iter()
        .zip(&plans)
        .map(|(j, p)| (j.name.as_str(), p))
        .collect();
    let built = build_multi_pipeline(&named, &catalog, phys, opts.share)?;
    debug_assert_eq!(
        built.sinks.len(),
        jobs.len(),
        "one sink per pattern pipeline"
    );

    let report = Executor::new(exec.clone()).run(built.graph)?;
    let per_pattern = jobs
        .iter()
        .zip(plans)
        .zip(built.sinks)
        .map(|((j, plan), sink)| (j.name.clone(), plan, sink))
        .collect();
    Ok(MultiRun {
        report,
        share: built.share,
        per_pattern,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::Attr;
    use asp::time::Timestamp;
    use sea::pattern::{builders, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);

    fn events() -> Vec<Event> {
        let mut out = Vec::new();
        for m in 0..60i64 {
            for id in 0..2u32 {
                out.push(Event::new(
                    Q,
                    id,
                    Timestamp(m * 60_000),
                    ((m * 7 + id as i64) % 100) as f64,
                ));
                out.push(Event::new(
                    V,
                    id,
                    Timestamp(m * 60_000),
                    ((m * 13 + id as i64) % 100) as f64,
                ));
            }
        }
        out
    }

    #[test]
    fn two_patterns_share_one_job_and_agree_with_solo_runs() {
        let evs = events();
        let sources = crate::exec::split_by_type(&evs);
        let seq = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(4),
            vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 50.0)],
        );
        let and = builders::and(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(3),
            vec![Predicate::same_id(0, 1)],
        );
        let jobs = vec![
            PatternJob::new("seq", seq.clone(), MapperOptions::o1()),
            PatternJob::new("and", and.clone(), MapperOptions::o1().and_o3()),
        ];
        let multi = run_patterns(
            &jobs,
            &sources,
            &PhysicalConfig::default(),
            &ExecutorConfig::default(),
        )
        .expect("multi run");

        for (name, pattern, opts) in [
            ("seq", &seq, MapperOptions::o1()),
            ("and", &and, MapperOptions::o1().and_o3()),
        ] {
            let solo = crate::exec::run_pattern_simple(pattern, &opts, &sources).unwrap();
            assert_eq!(
                multi.dedup_matches(name),
                solo.dedup_matches(),
                "{name}: multi-pattern result equals solo run"
            );
            assert!(
                !multi.dedup_matches(name).is_empty(),
                "{name} found matches"
            );
        }
        assert_eq!(multi.names(), vec!["seq", "and"]);
        assert!(multi.plan("seq").is_some());
        assert!(multi.plan("nope").is_none());
        // The two patterns differ in shape but read the same streams —
        // the sharing pass merges at least one scan.
        assert!(multi.share.scans_saved() >= 1, "{:?}", multi.share);
        assert_eq!(
            multi.report.source_events, multi.share.expected_source_events,
            "source volume matches the DAG's prediction"
        );
    }

    #[test]
    fn shared_sources_are_counted_once_per_scan() {
        let evs = events();
        let sources = crate::exec::split_by_type(&evs);
        let p1 = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let jobs = vec![
            PatternJob::new("a", p1.clone(), MapperOptions::o1()),
            PatternJob::new("b", p1, MapperOptions::o1()),
        ];
        let multi = run_patterns(
            &jobs,
            &sources,
            &PhysicalConfig::default(),
            &ExecutorConfig::default(),
        )
        .unwrap();
        // The two patterns are identical, so their scans merge: the Q and
        // V streams are each ingested once — 2 scans × 120 events — where
        // isolated pipelines would pay 4 × 120.
        assert_eq!(multi.report.source_events, 2 * 120);
        assert_eq!(multi.share.scans_total, 4);
        assert_eq!(multi.share.scans_lowered, 2);
        assert_eq!(multi.raw_count("a"), multi.raw_count("b"));
        assert!(!multi.dedup_matches("a").is_empty());
        assert_eq!(multi.dedup_matches("a"), multi.dedup_matches("b"));
    }

    #[test]
    fn isolated_mode_pays_per_pattern_scans_but_agrees() {
        let evs = events();
        let sources = crate::exec::split_by_type(&evs);
        let p1 = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let jobs = vec![
            PatternJob::new("a", p1.clone(), MapperOptions::o1()),
            PatternJob::new("b", p1, MapperOptions::o1()),
        ];
        let catalog = shared_catalog(&sources);
        let isolated = run_patterns_with(
            &jobs,
            &catalog,
            &PhysicalConfig::default(),
            &ExecutorConfig::default(),
            &MultiOptions { share: false },
        )
        .unwrap();
        assert_eq!(isolated.report.source_events, 4 * 120);
        assert_eq!(isolated.share.scans_saved(), 0);
        let shared = run_patterns_with(
            &jobs,
            &catalog,
            &PhysicalConfig::default(),
            &ExecutorConfig::default(),
            &MultiOptions::default(),
        )
        .unwrap();
        for name in ["a", "b"] {
            assert_eq!(isolated.dedup_matches(name), shared.dedup_matches(name));
        }
    }
}
