//! Multi-pattern execution: several patterns in one dataflow job with
//! shared sources.
//!
//! The paper's related-work section lists multi-query optimization among
//! the capabilities serial CEP systems lack ("Other limitations are …
//! multi-query optimization for serial processing models", Section 6) —
//! and one advantage of mapping patterns onto an ASPS is that ordinary
//! multi-query techniques apply. This module provides the first of them:
//! *scan sharing*. All patterns of a batch run inside one executor job,
//! each with its own plan and sink, reading the same source arrays
//! (shared `Arc`s, one ingestion pass per scan); the runtime interleaves
//! their pipelines on the shared slots.

use std::collections::HashMap;

use asp::event::{Event, EventType};
use asp::graph::{GraphBuilder, SinkId};
use asp::runtime::{Executor, ExecutorConfig, RunReport};
use asp::tuple::MatchKey;

use sea::pattern::Pattern;

use crate::exec::{dedup_sorted, ExecError};
use crate::physical::{build_pipeline, PhysicalConfig};
use crate::plan::LogicalPlan;
use crate::translate::{translate, MapperOptions};

/// One pattern of a multi-pattern job.
pub struct PatternJob {
    /// Label used in reports and sink naming.
    pub name: String,
    /// The pattern to evaluate.
    pub pattern: Pattern,
    /// Mapping options for this pattern (may differ per job).
    pub opts: MapperOptions,
}

impl PatternJob {
    /// Bundle a named pattern with its mapping options.
    pub fn new(name: impl Into<String>, pattern: Pattern, opts: MapperOptions) -> Self {
        PatternJob {
            name: name.into(),
            pattern,
            opts,
        }
    }
}

/// The result of a multi-pattern run: the shared report plus per-pattern
/// plans and sinks.
pub struct MultiRun {
    /// The shared executor report covering every pattern's nodes.
    pub report: RunReport,
    per_pattern: Vec<(String, LogicalPlan, SinkId)>,
}

impl MultiRun {
    /// Names in submission order.
    pub fn names(&self) -> Vec<&str> {
        self.per_pattern
            .iter()
            .map(|(n, _, _)| n.as_str())
            .collect()
    }

    /// The executed plan of a pattern.
    pub fn plan(&self, name: &str) -> Option<&LogicalPlan> {
        self.per_pattern
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, p, _)| p)
    }

    /// Raw match count of a pattern (including sliding-window duplicates).
    pub fn raw_count(&self, name: &str) -> u64 {
        self.per_pattern
            .iter()
            .find(|(n, _, _)| n == name)
            .map_or(0, |(_, _, s)| self.report.sink_count(*s))
    }

    /// Canonical deduplicated matches of a pattern.
    pub fn dedup_matches(&self, name: &str) -> Vec<MatchKey> {
        self.per_pattern
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, s)| dedup_sorted(self.report.sink(*s)))
            .unwrap_or_default()
    }
}

/// Run several patterns over the same sources in one job.
pub fn run_patterns(
    jobs: &[PatternJob],
    sources: &HashMap<EventType, Vec<Event>>,
    phys: &PhysicalConfig,
    exec: &ExecutorConfig,
) -> Result<MultiRun, ExecError> {
    assert!(!jobs.is_empty(), "at least one pattern required");
    let mut sources = sources.clone();
    for j in jobs {
        for t in j.pattern.expr.input_types() {
            sources.entry(t).or_default();
        }
    }

    // Build each pattern's pipeline independently, then splice the
    // self-contained sub-graphs into one job (a pure id renumbering —
    // sources over the same stream share the underlying `Arc`ed arrays).
    let mut combined = GraphBuilder::new();
    let mut per_pattern = Vec::with_capacity(jobs.len());
    for job in jobs {
        let plan = translate(&job.pattern, &job.opts)?;
        let (sub, sub_sink) = build_pipeline(&plan, &sources, phys)?;
        let mapped = combined.splice(sub);
        let sink = mapped[0];
        debug_assert_eq!(mapped.len(), 1, "one sink per pattern pipeline");
        let _ = sub_sink;
        per_pattern.push((job.name.clone(), plan, sink));
    }

    let report = Executor::new(exec.clone()).run(combined)?;
    Ok(MultiRun {
        report,
        per_pattern,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::Attr;
    use asp::time::Timestamp;
    use sea::pattern::{builders, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);

    fn events() -> Vec<Event> {
        let mut out = Vec::new();
        for m in 0..60i64 {
            for id in 0..2u32 {
                out.push(Event::new(
                    Q,
                    id,
                    Timestamp(m * 60_000),
                    ((m * 7 + id as i64) % 100) as f64,
                ));
                out.push(Event::new(
                    V,
                    id,
                    Timestamp(m * 60_000),
                    ((m * 13 + id as i64) % 100) as f64,
                ));
            }
        }
        out
    }

    #[test]
    fn two_patterns_share_one_job_and_agree_with_solo_runs() {
        let evs = events();
        let sources = crate::exec::split_by_type(&evs);
        let seq = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(4),
            vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 50.0)],
        );
        let and = builders::and(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(3),
            vec![Predicate::same_id(0, 1)],
        );
        let jobs = vec![
            PatternJob::new("seq", seq.clone(), MapperOptions::o1()),
            PatternJob::new("and", and.clone(), MapperOptions::o1().and_o3()),
        ];
        let multi = run_patterns(
            &jobs,
            &sources,
            &PhysicalConfig::default(),
            &ExecutorConfig::default(),
        )
        .expect("multi run");

        for (name, pattern, opts) in [
            ("seq", &seq, MapperOptions::o1()),
            ("and", &and, MapperOptions::o1().and_o3()),
        ] {
            let solo = crate::exec::run_pattern_simple(pattern, &opts, &sources).unwrap();
            assert_eq!(
                multi.dedup_matches(name),
                solo.dedup_matches(),
                "{name}: multi-pattern result equals solo run"
            );
            assert!(
                !multi.dedup_matches(name).is_empty(),
                "{name} found matches"
            );
        }
        assert_eq!(multi.names(), vec!["seq", "and"]);
        assert!(multi.plan("seq").is_some());
        assert!(multi.plan("nope").is_none());
    }

    #[test]
    fn shared_sources_are_counted_once_per_scan() {
        let evs = events();
        let sources = crate::exec::split_by_type(&evs);
        let p1 = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let jobs = vec![
            PatternJob::new("a", p1.clone(), MapperOptions::o1()),
            PatternJob::new("b", p1, MapperOptions::o1()),
        ];
        let multi = run_patterns(
            &jobs,
            &sources,
            &PhysicalConfig::default(),
            &ExecutorConfig::default(),
        )
        .unwrap();
        // Both patterns scanned Q and V once each: 4 scans × 120 events.
        assert_eq!(multi.report.source_events, 4 * 120);
        assert_eq!(multi.raw_count("a"), multi.raw_count("b"));
    }
}
