//! Automatic optimization selection from stream statistics — the paper's
//! future-work item: "collecting information on data and pattern
//! characteristics such as frequency and selectivity enables the automated
//! application of the proposed optimization opportunities" (Section 7).
//!
//! [`StreamStats`] measures per-type arrival rates and samples per-leaf
//! filter pass rates; [`auto_options`] then derives a [`MapperOptions`]:
//!
//! * **O3** whenever the pattern provides an equi-key (partitioned joins
//!   strictly dominate a single global partition);
//! * **O2** for Kleene+ iterations (the only mapping that supports them);
//!   exact `ITER_m` keeps the join chain — O2 would change the output
//!   shape (Section 4.3.2 calls it approximate);
//! * **O1** per Section 4.3.1's frequency rule: interval joins win unless
//!   the window-defining (left) stream is much more frequent than the
//!   right stream;
//! * **join order**: cost-driven left-deep enumeration
//!   ([`OrderingStrategy::CostBased`], the default): every left-deep
//!   permutation of the top-level operands is priced by the analyzer's
//!   candidate-volume formula `Σ_k |acc_k| · r_k · W`, applying a cross
//!   predicate's selectivity (`1/key_fanout` for equi-keys, `0.5`
//!   otherwise) at the first join where both its variables are bound.
//!   This subsumes the ascending-rate heuristic of Section 4.2.2 — which
//!   remains reachable via [`OrderingStrategy::RateHeuristic`] for A/B
//!   comparison — and beats it whenever a selective cross predicate can
//!   be bound early (the core insight of Kolchinsky & Schuster's join-
//!   order work for CEP).

use std::collections::{HashMap, HashSet};

use asp::event::{Event, EventType};

use sea::annotations::Annotations;
use sea::pattern::{Pattern, PatternExpr};
use sea::predicate::VarId;

use crate::translate::{JoinOrder, MapperOptions};

/// How many events per stream the selectivity sampler inspects.
const SAMPLE_SIZE: usize = 4096;

/// Per-type arrival statistics plus a sample for selectivity probing.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    per_type: HashMap<EventType, TypeStats>,
}

#[derive(Debug, Clone)]
struct TypeStats {
    count: u64,
    /// Events per minute over the observed span.
    rate_per_min: f64,
    /// Distinct `id` values in the stream (partition-key fanout).
    distinct_ids: u64,
    /// Evenly spaced sample for pass-rate estimation.
    sample: Vec<Event>,
}

impl StreamStats {
    /// Measure the registered source streams.
    pub fn from_sources(sources: &HashMap<EventType, Vec<Event>>) -> Self {
        let mut per_type = HashMap::new();
        for (t, evs) in sources {
            if evs.is_empty() {
                per_type.insert(
                    *t,
                    TypeStats {
                        count: 0,
                        rate_per_min: 0.0,
                        distinct_ids: 0,
                        sample: Vec::new(),
                    },
                );
                continue;
            }
            let span_ms = (evs[evs.len() - 1].ts - evs[0].ts).millis().max(1) as f64;
            let rate = evs.len() as f64 / (span_ms / 60_000.0).max(1.0 / 60.0);
            let stride = (evs.len() / SAMPLE_SIZE).max(1);
            let sample: Vec<Event> = evs.iter().step_by(stride).copied().collect();
            let distinct_ids = evs.iter().map(|e| e.id).collect::<HashSet<_>>().len() as u64;
            per_type.insert(
                *t,
                TypeStats {
                    count: evs.len() as u64,
                    rate_per_min: rate,
                    distinct_ids,
                    sample,
                },
            );
        }
        StreamStats { per_type }
    }

    /// Raw arrival rate of a type, events/minute.
    pub fn rate(&self, t: EventType) -> f64 {
        self.per_type.get(&t).map_or(0.0, |s| s.rate_per_min)
    }

    /// Total observed events of a type.
    pub fn count(&self, t: EventType) -> u64 {
        self.per_type.get(&t).map_or(0, |s| s.count)
    }

    /// Distinct `id` values observed in a type's stream — the fanout an
    /// equi-key join partitions over (0 for unknown types).
    pub fn distinct_ids(&self, t: EventType) -> u64 {
        self.per_type.get(&t).map_or(0, |s| s.distinct_ids)
    }

    /// Sampled pass rate of a pattern leaf: its type's events surviving
    /// the leaf filters and the pattern's single-variable predicates.
    pub fn pass_rate(&self, pattern: &Pattern, leaf: &sea::pattern::Leaf) -> f64 {
        let Some(stats) = self.per_type.get(&leaf.etype) else {
            return 0.0;
        };
        if stats.sample.is_empty() {
            return 0.0;
        }
        let single = if leaf.var != usize::MAX {
            pattern.single_var_predicates(leaf.var)
        } else {
            Vec::new()
        };
        let mut pass = 0usize;
        let mut binding: Vec<Option<Event>> = vec![None; pattern.positions().max(1)];
        for e in &stats.sample {
            if !leaf.accepts(e) {
                continue;
            }
            let ok = if leaf.var == usize::MAX || single.is_empty() {
                true
            } else {
                binding.iter_mut().for_each(|b| *b = None);
                binding[leaf.var] = Some(*e);
                single.iter().all(|p| p.eval_sparse(&binding))
            };
            if ok {
                pass += 1;
            }
        }
        pass as f64 / stats.sample.len() as f64
    }

    /// Effective (post-filter) rate of a sub-pattern: the sum of its
    /// leaves' filtered rates — the cost driver for joins over it.
    pub fn effective_rate(&self, pattern: &Pattern, expr: &PatternExpr) -> f64 {
        expr.leaves()
            .iter()
            .filter(|l| l.var != usize::MAX)
            .map(|l| self.rate(l.etype) * self.pass_rate(pattern, l))
            .sum()
    }
}

/// Section 4.3.1's crossover threshold: prefer sliding windows only when
/// the leftmost (window-defining) stream is this many times more frequent
/// than the rest combined.
const INTERVAL_JOIN_FREQ_THRESHOLD: f64 = 8.0;

/// How the automatic optimizer orders a multi-way join chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingStrategy {
    /// Price every left-deep permutation with the analyzer's candidate-
    /// volume cost model (predicate-aware selectivities). The default.
    #[default]
    CostBased,
    /// The prior heuristic: ascending effective rate, rarest stream
    /// first. Kept reachable for A/B comparison (`plan-explain --order`).
    RateHeuristic,
}

/// Derive the optimization set for a pattern from measured statistics,
/// using the default [`OrderingStrategy::CostBased`] join ordering.
pub fn auto_options(pattern: &Pattern, stats: &StreamStats) -> MapperOptions {
    auto_options_with(pattern, stats, OrderingStrategy::CostBased)
}

/// [`auto_options`] with an explicit join-ordering strategy.
pub fn auto_options_with(
    pattern: &Pattern,
    stats: &StreamStats,
    strategy: OrderingStrategy,
) -> MapperOptions {
    // O3: equi-keys always help (anything beats one global partition).
    let partition_by_key = !pattern.equi_keys().is_empty();

    // O2: required for Kleene+; exact ITER keeps the composing join chain.
    let aggregate_iteration = matches!(pattern.expr, PatternExpr::Iter { at_least: true, .. });

    // Join order over the top-level SEQ/AND operands only.
    let join_order = match &pattern.expr {
        PatternExpr::Seq(parts) | PatternExpr::And(parts) if parts.len() > 2 => {
            let mut rates: Vec<f64> = parts
                .iter()
                .map(|p| stats.effective_rate(pattern, p))
                .collect();
            // Guard against degenerate all-zero stats.
            if rates.iter().all(|r| *r == 0.0) {
                rates = vec![1.0; parts.len()];
            }
            let idx = match strategy {
                OrderingStrategy::CostBased => cost_based_order(pattern, parts, &rates, stats),
                OrderingStrategy::RateHeuristic => {
                    let mut idx: Vec<usize> = (0..parts.len()).collect();
                    idx.sort_by(|a, b| rates[*a].total_cmp(&rates[*b]));
                    idx
                }
            };
            if idx.windows(2).all(|w| w[0] < w[1]) {
                JoinOrder::Textual // already sorted
            } else {
                JoinOrder::Permutation(idx)
            }
        }
        _ => JoinOrder::Textual,
    };

    // O1: interval joins unless the window-defining stream dwarfs the rest.
    let interval_join = match &pattern.expr {
        PatternExpr::Seq(parts) | PatternExpr::And(parts) => {
            let first = match &join_order {
                JoinOrder::Permutation(p) => &parts[p[0]],
                JoinOrder::Textual => &parts[0],
            };
            let left = stats.effective_rate(pattern, first);
            let rest: f64 = parts
                .iter()
                .map(|p| stats.effective_rate(pattern, p))
                .sum::<f64>()
                - left;
            left <= INTERVAL_JOIN_FREQ_THRESHOLD * rest.max(1e-9)
        }
        _ => true,
    };

    MapperOptions {
        interval_join,
        aggregate_iteration,
        partition_by_key,
        join_order,
    }
}

/// Exhaustive enumeration cap: up to 7 operands we price all `n!`
/// left-deep orders (≤ 5040 cheap evaluations); beyond that a greedy
/// cheapest-next construction keeps planning O(n²).
const EXHAUSTIVE_ORDER_LIMIT: usize = 7;

/// Price every left-deep order of `parts` and return the cheapest.
///
/// Cost of an order is the total candidate volume its join chain
/// examines: `Σ_k |acc_{k−1}| · r_k · W`, where the accumulated rate
/// shrinks by a cross predicate's selectivity at the first join that
/// binds all its variables — `1/key_fanout` for equi-key predicates,
/// [`sea::annotations::DEFAULT_TERM_SELECTIVITY`] otherwise. Ties break
/// toward ascending input rates and then the lexicographically smallest
/// permutation, so planning is deterministic.
fn cost_based_order(
    pattern: &Pattern,
    parts: &[PatternExpr],
    rates: &[f64],
    stats: &StreamStats,
) -> Vec<usize> {
    let n = parts.len();
    let w_min = pattern.window.size_minutes().max(1.0 / 60.0);
    // Variables bound by each operand.
    let part_vars: Vec<Vec<VarId>> = parts
        .iter()
        .map(|p| {
            p.leaves()
                .iter()
                .filter(|l| l.var != usize::MAX)
                .map(|l| l.var)
                .collect()
        })
        .collect();
    let preds = pattern.cross_predicates();
    let key_fanout = pattern
        .expr
        .input_types()
        .into_iter()
        .map(|t| stats.distinct_ids(t))
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let pred_sel: Vec<f64> = preds
        .iter()
        .map(|p| {
            if p.is_equi_key() {
                1.0 / key_fanout
            } else {
                sea::annotations::DEFAULT_TERM_SELECTIVITY
            }
        })
        .collect();

    let cost_of = |order: &[usize]| -> f64 {
        let mut bound: HashSet<VarId> = part_vars[order[0]].iter().copied().collect();
        let mut applied = vec![false; preds.len()];
        // Predicates confined to the first operand are already folded
        // into its effective rate's pass sampling; just mark them.
        for (i, p) in preds.iter().enumerate() {
            if p.vars().iter().all(|v| bound.contains(v)) {
                applied[i] = true;
            }
        }
        let mut acc = rates[order[0]].max(1e-9);
        let mut cost = 0.0;
        for &k in &order[1..] {
            let cand = acc * rates[k].max(1e-9) * w_min;
            cost += cand;
            bound.extend(part_vars[k].iter().copied());
            let mut sel = 1.0;
            for (i, p) in preds.iter().enumerate() {
                if !applied[i] && p.vars().iter().all(|v| bound.contains(v)) {
                    applied[i] = true;
                    sel *= pred_sel[i];
                }
            }
            acc = cand * sel;
        }
        cost
    };

    let better = |best: &(f64, Vec<usize>), cost: f64, order: &[usize]| -> bool {
        match cost.total_cmp(&best.0) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                // Tie-break 1: ascending input-rate sequence (matches the
                // rate heuristic on predicate-free patterns).
                let a: Vec<f64> = order.iter().map(|i| rates[*i]).collect();
                let b: Vec<f64> = best.1.iter().map(|i| rates[*i]).collect();
                for (x, y) in a.iter().zip(&b) {
                    match x.total_cmp(y) {
                        std::cmp::Ordering::Less => return true,
                        std::cmp::Ordering::Greater => return false,
                        std::cmp::Ordering::Equal => {}
                    }
                }
                // Tie-break 2: lexicographically smallest permutation.
                order < best.1.as_slice()
            }
        }
    };

    if n <= EXHAUSTIVE_ORDER_LIMIT {
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut order: Vec<usize> = (0..n).collect();
        permute(&mut order, 0, &mut |cand| {
            let cost = cost_of(cand);
            match &best {
                Some(b) if !better(b, cost, cand) => {}
                _ => best = Some((cost, cand.to_vec())),
            }
        });
        best.map(|(_, o)| o).unwrap_or_else(|| (0..n).collect())
    } else {
        // Greedy: start from the rarest operand, then repeatedly append
        // the operand whose join is cheapest given what is bound so far.
        let mut remaining: Vec<usize> = (0..n).collect();
        remaining.sort_by(|a, b| rates[*a].total_cmp(&rates[*b]));
        let mut order = vec![remaining.remove(0)];
        while !remaining.is_empty() {
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let mut oa = order.clone();
                    oa.push(**a);
                    let mut ob = order.clone();
                    ob.push(**b);
                    cost_of(&oa).total_cmp(&cost_of(&ob))
                })
                .map(|(i, v)| (i, *v))
                .unwrap_or((0, remaining[0]));
            order.push(remaining.remove(pos));
        }
        order
    }
}

/// Heap's algorithm, calling `visit` with every permutation of `items`.
fn permute(items: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    let n = items.len();
    if k == n.saturating_sub(1) || n == 0 {
        visit(items);
        return;
    }
    for i in k..n {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Turn measured stream statistics into analyzer [`Annotations`]: rates
/// and per-position pass rates from the samples, key fanout from the
/// distinct-id counts. Per-window peaks fall back to the `2 × rate × W`
/// burst allowance (the stats keep no full timeline); use
/// [`Annotations::measured`] when the complete streams are at hand.
pub fn annotations_from_stats(pattern: &Pattern, stats: &StreamStats) -> Annotations {
    let mut ann = Annotations::for_pattern(pattern);
    for t in pattern.expr.input_types() {
        ann = ann.with_rate(t, stats.rate(t));
    }
    for leaf in pattern.expr.leaves() {
        if leaf.var != usize::MAX {
            ann = ann.with_selectivity(leaf.var, stats.pass_rate(pattern, leaf));
        }
    }
    ann.key_fanout = pattern
        .expr
        .input_types()
        .into_iter()
        .map(|t| stats.distinct_ids(t))
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    ann
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::Attr;
    use asp::time::Timestamp;
    use sea::pattern::{builders, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);
    const PM: EventType = EventType(2);

    fn stream(t: EventType, n: usize, per_min: usize) -> Vec<Event> {
        (0..n)
            .map(|i| {
                Event::new(
                    t,
                    1,
                    Timestamp((i as i64) * 60_000 / per_min.max(1) as i64),
                    (i % 100) as f64,
                )
            })
            .collect()
    }

    fn sources(specs: &[(EventType, usize, usize)]) -> HashMap<EventType, Vec<Event>> {
        specs
            .iter()
            .map(|(t, n, r)| (*t, stream(*t, *n, *r)))
            .collect()
    }

    #[test]
    fn rates_are_measured_per_minute() {
        let s = StreamStats::from_sources(&sources(&[(Q, 600, 1), (V, 1200, 4)]));
        assert!((s.rate(Q) - 1.0).abs() < 0.1, "rate(Q)={}", s.rate(Q));
        assert!((s.rate(V) - 4.0).abs() < 0.2, "rate(V)={}", s.rate(V));
        assert_eq!(s.count(Q), 600);
    }

    #[test]
    fn pass_rate_reflects_filters() {
        let s = StreamStats::from_sources(&sources(&[(Q, 1000, 1)]));
        // value cycles 0..99 uniformly → threshold ≤ 24 passes ~25 %.
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(5),
            vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 24.0)],
        );
        let leaf = p.expr.leaves()[0].clone();
        let rate = s.pass_rate(&p, &leaf);
        assert!((rate - 0.25).abs() < 0.05, "pass rate {rate}");
    }

    #[test]
    fn equi_key_enables_o3() {
        let s = StreamStats::default();
        let keyed = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(5),
            vec![Predicate::same_id(0, 1)],
        );
        assert!(auto_options(&keyed, &s).partition_by_key);
        let unkeyed = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(5), vec![]);
        assert!(!auto_options(&unkeyed, &s).partition_by_key);
    }

    #[test]
    fn kleene_selects_o2_exact_iter_does_not() {
        let s = StreamStats::default();
        let kp = builders::kleene_plus(V, "V", 3, WindowSpec::minutes(5));
        assert!(auto_options(&kp, &s).aggregate_iteration);
        let exact = builders::iter(V, "V", 3, WindowSpec::minutes(5), vec![]);
        assert!(!auto_options(&exact, &s).aggregate_iteration);
    }

    #[test]
    fn rare_streams_are_ordered_first() {
        // Q: 16/min, V: 4/min, PM: 0.5/min → order should be PM, V, Q.
        let src = sources(&[(Q, 4800, 16), (V, 1200, 4), (PM, 150, 1)]);
        let mut src = src;
        // Halve PM's rate via timestamps: regenerate with 1 every 2 min.
        src.insert(
            PM,
            (0..150)
                .map(|i| Event::new(PM, 1, Timestamp(i * 120_000), (i % 100) as f64))
                .collect(),
        );
        let s = StreamStats::from_sources(&src);
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(5),
            vec![],
        );
        match auto_options(&p, &s).join_order {
            JoinOrder::Permutation(order) => assert_eq!(order, vec![2, 1, 0]),
            JoinOrder::Textual => panic!("expected reordering"),
        }
    }

    #[test]
    fn interval_join_follows_frequency_rule() {
        // Balanced rates → interval join.
        let s = StreamStats::from_sources(&sources(&[(Q, 1200, 4), (V, 1200, 4)]));
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(5), vec![]);
        assert!(auto_options(&p, &s).interval_join);
        // Left stream 20× more frequent → sliding windows.
        let s = StreamStats::from_sources(&sources(&[(Q, 24_000, 80), (V, 1200, 4)]));
        assert!(!auto_options(&p, &s).interval_join);
    }

    #[test]
    fn filters_shift_the_effective_order() {
        // Equal raw rates, but V is filtered to 10 %: V becomes "rare" and
        // moves to the front of the join order.
        let src = sources(&[(Q, 2400, 4), (V, 2400, 4), (PM, 2400, 4)]);
        let s = StreamStats::from_sources(&src);
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(5),
            vec![Predicate::threshold(1, Attr::Value, CmpOp::Le, 9.0)],
        );
        match auto_options(&p, &s).join_order {
            JoinOrder::Permutation(order) => assert_eq!(order[0], 1, "filtered V first"),
            JoinOrder::Textual => panic!("expected reordering"),
        }
        // A filter on the already-first operand keeps the textual order.
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(5),
            vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 9.0)],
        );
        assert_eq!(auto_options(&p, &s).join_order, JoinOrder::Textual);
    }

    #[test]
    fn selective_predicate_pulls_joined_streams_together() {
        // Q and PM are frequent (8/min) but share a highly selective
        // equi-key (64 distinct sensors); V is rare (1/min). The rate
        // heuristic joins rare V first and pays 8/min × 8/min joins later;
        // the cost model binds the 1/64 key early by joining Q ⋈ PM first.
        let mk = |t: EventType, n: i64, step_ms: i64| -> Vec<Event> {
            (0..n)
                .map(|i| Event::new(t, (i % 64) as u32, Timestamp(i * step_ms), (i % 100) as f64))
                .collect()
        };
        let src = HashMap::from([
            (Q, mk(Q, 4800, 7_500)),
            (V, mk(V, 600, 60_000)),
            (PM, mk(PM, 4800, 7_500)),
        ]);
        let s = StreamStats::from_sources(&src);
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(5),
            vec![Predicate::same_id(0, 2)],
        );
        match auto_options_with(&p, &s, OrderingStrategy::RateHeuristic).join_order {
            JoinOrder::Permutation(order) => assert_eq!(order[0], 1, "heuristic puts rare V first"),
            JoinOrder::Textual => panic!("heuristic should reorder"),
        }
        match auto_options(&p, &s).join_order {
            JoinOrder::Permutation(order) => {
                assert_eq!(order[2], 1, "cost model defers V: {order:?}");
                let mut first_two = [order[0], order[1]];
                first_two.sort_unstable();
                assert_eq!(first_two, [0, 2], "keyed streams join first: {order:?}");
            }
            JoinOrder::Textual => panic!("cost model should reorder"),
        }
    }

    #[test]
    fn annotations_from_stats_carry_rates_and_fanout() {
        let mut src = sources(&[(Q, 600, 1), (V, 2400, 4)]);
        for (i, e) in src.get_mut(&Q).expect("q").iter_mut().enumerate() {
            e.id = (i % 16) as u32;
        }
        let s = StreamStats::from_sources(&src);
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(5),
            vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 24.0)],
        );
        let ann = annotations_from_stats(&p, &s);
        assert!((ann.rate(V) - 4.0).abs() < 0.2, "rate {}", ann.rate(V));
        assert!((ann.selectivity(0) - 0.25).abs() < 0.05);
        assert_eq!(ann.key_fanout, 16.0);
    }

    #[test]
    fn auto_options_produce_correct_plans() {
        // End-to-end sanity: auto-chosen options yield oracle-equal results.
        use crate::exec::{run_pattern_simple, split_by_type};
        let mut events = Vec::new();
        for m in 0..40i64 {
            for id in 0..3u32 {
                events.push(Event::new(
                    Q,
                    id,
                    Timestamp(m * 60_000),
                    ((m * 7 + id as i64) % 100) as f64,
                ));
                events.push(Event::new(
                    V,
                    id,
                    Timestamp(m * 60_000),
                    ((m * 13 + id as i64) % 100) as f64,
                ));
                if m % 3 == 0 {
                    events.push(Event::new(
                        PM,
                        id,
                        Timestamp(m * 60_000),
                        ((m * 29 + id as i64) % 100) as f64,
                    ));
                }
            }
        }
        let sources = split_by_type(&events);
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(5),
            vec![Predicate::same_id(0, 1), Predicate::same_id(1, 2)],
        );
        let stats = StreamStats::from_sources(&sources);
        let opts = auto_options(&p, &stats);
        assert!(opts.partition_by_key);
        let run = run_pattern_simple(&p, &opts, &sources).expect("auto run");
        let oracle: Vec<_> = sea::oracle::evaluate(&p, &events)
            .into_iter()
            .map(asp::tuple::MatchKey)
            .collect();
        assert_eq!(run.dedup_matches(), oracle);
    }
}

/// Annotate a plan with estimated per-node rates from measured statistics
/// — the cost model behind [`auto_options`], made visible (an `EXPLAIN
/// ANALYZE`-style view).
///
/// Scans show `rate × pass`; joins show the expected output rate
/// `rate_l · rate_r · W` (candidate pairs per minute before θ).
pub fn explain_with_stats(
    plan: &crate::plan::LogicalPlan,
    pattern: &Pattern,
    stats: &StreamStats,
) -> String {
    // A plan handed to the cost annotator after option selection (or any
    // future rewrite) must still satisfy every plan invariant.
    let lints = crate::lint::lint_plan(plan);
    debug_assert!(
        lints.is_empty(),
        "plan fails lint before cost annotation:\n{}",
        lints
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let mut out = format!("-- mapping: {}\n", plan.mapping);
    annotate(&plan.root, pattern, stats, 0, &mut out);
    out
}

fn annotate(
    node: &crate::plan::PlanNode,
    pattern: &Pattern,
    stats: &StreamStats,
    depth: usize,
    out: &mut String,
) -> f64 {
    use crate::plan::PlanNode;
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    match node {
        PlanNode::Scan {
            type_name,
            leaf,
            var,
            ..
        } => {
            let rate = stats.rate(leaf.etype);
            let pass = stats.pass_rate(pattern, leaf);
            let eff = rate * pass;
            let _ = writeln!(
                out,
                "{pad}Scan {type_name} [e{}]  ~{rate:.2} ev/min × pass {:.1}% ⇒ {eff:.3} ev/min",
                var + 1,
                pass * 100.0
            );
            eff
        }
        PlanNode::Join {
            left,
            right,
            windowing,
            span_ms,
            ..
        } => {
            // Reserve the line, fill after children are annotated.
            let header_at = out.len();
            let l = annotate(left, pattern, stats, depth + 1, out);
            let r = annotate(right, pattern, stats, depth + 1, out);
            let w_min = *span_ms as f64 / 60_000.0;
            let est = l * r * w_min; // candidate pairs per minute
            let header = format!("{pad}Join {windowing}  ~{est:.3} candidates/min\n");
            out.insert_str(header_at, &header);
            est
        }
        PlanNode::Union { inputs } => {
            let header_at = out.len();
            let sum: f64 = inputs
                .iter()
                .map(|i| annotate(i, pattern, stats, depth + 1, out))
                .sum();
            let header = format!("{pad}Union  ~{sum:.3} ev/min\n");
            out.insert_str(header_at, &header);
            sum
        }
        PlanNode::Aggregate {
            input, m, window, ..
        } => {
            let header_at = out.len();
            let inner = annotate(input, pattern, stats, depth + 1, out);
            let per_window = inner * window.size.millis() as f64 / 60_000.0;
            let header = format!("{pad}Aggregate count ≥ {m}  ~{per_window:.2} relevant/window\n");
            out.insert_str(header_at, &header);
            inner
        }
        PlanNode::NextOccurrence { trigger, marker, w } => {
            let header_at = out.len();
            let t = annotate(trigger, pattern, stats, depth + 1, out);
            let m_rate = stats.rate(marker.etype) * stats.pass_rate(pattern, marker);
            let header = format!(
                "{pad}NextOccurrence(¬{} ~{m_rate:.3} ev/min, hold {w})\n",
                marker.type_name
            );
            out.insert_str(header_at, &header);
            t
        }
        PlanNode::Project { input, layout } => {
            let header_at = out.len();
            let inner = annotate(input, pattern, stats, depth + 1, out);
            let cols: Vec<String> = layout.iter().map(|v| format!("e{}", v + 1)).collect();
            let header = format!("{pad}Project [{}]  ~{inner:.3} ev/min\n", cols.join(", "));
            out.insert_str(header_at, &header);
            inner
        }
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use asp::event::Attr;
    use asp::time::Timestamp;
    use sea::pattern::{builders, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    #[test]
    fn explain_annotates_rates_and_estimates() {
        let q = EventType(0);
        let v = EventType(1);
        let mk = |t: EventType, n: usize| -> Vec<Event> {
            (0..n)
                .map(|i| Event::new(t, 1, Timestamp(i as i64 * 60_000), (i % 100) as f64))
                .collect()
        };
        let sources = HashMap::from([(q, mk(q, 600)), (v, mk(v, 600))]);
        let stats = StreamStats::from_sources(&sources);
        let p = builders::seq(
            &[(q, "Q"), (v, "V")],
            WindowSpec::minutes(10),
            vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 49.0)],
        );
        let plan = crate::translate(&p, &crate::MapperOptions::o1()).unwrap();
        let text = explain_with_stats(&plan, &p, &stats);
        assert!(text.contains("Scan Q"), "{text}");
        assert!(text.contains("pass 50.0%"), "{text}");
        assert!(text.contains("candidates/min"), "{text}");
        // Estimated candidates: 0.5 × 1.0 × 10 = 5/min.
        assert!(text.contains("~5.0") || text.contains("~4.9"), "{text}");
    }
}
