//! Physical planning: logical plan → executable `asp` dataflow graph.
//!
//! Each plan node becomes one or more dataflow operators: scans share one
//! source per event type and add their pushed-down filter; global joins
//! get the uniform-key map of Section 4.2.1 (single partition); O3 joins
//! hash-partition by sensor id across `parallelism` task slots. A final
//! projection re-orders each match's constituents into pattern-position
//! order and re-defines the event time to the match maximum (the
//! complete-match rule of Section 4.2.2).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder, NodeId, SinkId, SinkMode, SourceConfig};
use asp::operator::{
    Cmp, DedupOp, FilterOp, FilterSpec, IntervalBounds, IntervalJoinOp, JoinPredicate, MapOp,
    NextOccurrenceOp, Operator, UnaryPredicate, UnionOp, WindowAggregateOp, WindowJoinOp,
};
use asp::time::Timestamp;
use asp::tuple::{TsRule, Tuple};
use asp::window::SlidingWindows;

use sea::pattern::Leaf;
use sea::predicate::{CmpOp, Expr, Predicate, VarId};

use crate::plan::{JoinWindowing, LogicalPlan, Partitioning, PlanNode};
use crate::share::{canonical_key, share_summary, ShareReport};
use crate::typecheck::{self, KeyProvenance, ShardSafety, TypedNode};

/// Pre-`Arc`ed per-type source streams shared across the patterns of a
/// multi-pattern job: registering a stream with N scans costs N refcount
/// bumps, never N copies.
pub type SourceCatalog = HashMap<EventType, Arc<Vec<Event>>>;

/// Physical execution knobs.
#[derive(Debug, Clone)]
pub struct PhysicalConfig {
    /// Task slots for keyed (O3) stateful operators.
    pub parallelism: usize,
    /// Shard count for keyed stateful operators whose placement is safe to
    /// shard (the typechecker's [`ShardSafety::ShardableByKey`] verdict).
    /// `Some(n)` lowers those nodes as shared-nothing shard groups of `n`
    /// instances behind a runtime slot table, making their hot keys
    /// eligible for adaptive migration; `None` keeps plain hash-mod
    /// placement at [`PhysicalConfig::parallelism`]. The runtime's
    /// `ExecutorConfig::shards` (`ASP_SHARDS`) can still override the
    /// count of every sharded node at execution time.
    pub shards: Option<usize>,
    /// Per-stateful-operator state budget in bytes (None = unlimited).
    pub memory_limit: Option<usize>,
    /// Source pacing in events/second per source instance (None = as fast
    /// as backpressure allows).
    pub source_rate: Option<f64>,
    /// Punctuated watermark interval (events).
    pub watermark_every: usize,
    /// Bounded out-of-orderness tolerated in the source streams:
    /// watermarks assert `max seen ts − lag`. Zero for in-order inputs.
    pub watermark_lag: asp::time::Duration,
    /// Collect matched tuples at the sink (tests/examples) or count only
    /// (benchmarks).
    pub collect_output: bool,
    /// Suppress the duplicate detections that overlapping sliding windows
    /// produce (Section 3.1.4 notes duplicates are irrelevant for
    /// idempotent actions but must otherwise be handled — this handles
    /// them). Interval-join plans are duplicate-free already.
    pub dedup_output: bool,
    /// Runtime schema-conformance mode: typecheck the plan before
    /// building (rejecting defective plans) and splice a stateless
    /// assertion operator after every plan node that panics if a tuple
    /// crossing the edge violates the inferred schema or key — the
    /// falsifiability hook for `cep2asp::typecheck`. Defaults to on when
    /// the crate is built with the `schema-conformance` feature.
    pub schema_conformance: bool,
}

impl Default for PhysicalConfig {
    fn default() -> Self {
        PhysicalConfig {
            parallelism: 1,
            shards: None,
            memory_limit: None,
            source_rate: None,
            watermark_every: 256,
            watermark_lag: asp::time::Duration::ZERO,
            collect_output: true,
            dedup_output: false,
            schema_conformance: cfg!(feature = "schema-conformance"),
        }
    }
}

/// Physical planning errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The plan scans a type with no registered source stream.
    MissingSource(EventType),
    /// Schema-conformance mode rejected the plan before building
    /// (rendered `S`-code diagnostics from `cep2asp::typecheck`).
    SchemaRejected(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingSource(t) => write!(f, "no source stream registered for {t}"),
            BuildError::SchemaRejected(msg) => {
                write!(f, "plan rejected by schema typecheck: {msg}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Build a runnable dataflow graph from a logical plan.
///
/// `sources` maps each scanned event type to its (ts-sorted) stream.
pub fn build_pipeline(
    plan: &LogicalPlan,
    sources: &HashMap<EventType, Vec<Event>>,
    cfg: &PhysicalConfig,
) -> Result<(GraphBuilder, SinkId), BuildError> {
    let typed = if cfg.schema_conformance {
        let res = typecheck::typecheck(plan);
        if !res.is_clean() {
            let msgs: Vec<String> = res.diagnostics.iter().map(|d| d.to_string()).collect();
            return Err(BuildError::SchemaRejected(msgs.join("; ")));
        }
        Some(res.root)
    } else {
        None
    };
    let mut b = Builder {
        g: GraphBuilder::new(),
        sources: SourceLookup::Plain(sources),
        cfg,
        positions: plan.positions,
        source_cfgs: HashMap::new(),
        expected_source_events: 0,
        share: None,
    };
    let sink = b.lower_to_sink(plan, typed.as_ref())?;
    Ok((b.g, sink))
}

/// A multi-pattern physical build: one dataflow graph serving every
/// plan's sink, with structurally equal subtrees lowered once (see
/// [`crate::share`]).
pub struct MultiBuild {
    /// The combined graph — many sinks, shared interior nodes.
    pub graph: GraphBuilder,
    /// One sink per plan, in submission order.
    pub sinks: Vec<SinkId>,
    /// What was merged, plus the source-volume prediction
    /// ([`ShareReport::expected_source_events`]) the share oracle checks
    /// against the run report.
    pub share: ShareReport,
}

/// Lower a batch of plans into one graph. With `share` on, structurally
/// equal subtrees (by [`canonical_key`]) are interned and lowered once —
/// the shared node's output fans out to every consumer's remainder
/// pipeline; each pattern always keeps its own sink. With `share` off,
/// the N pipelines are fully independent (the isolated-splice baseline).
pub fn build_multi_pipeline(
    plans: &[(&str, &LogicalPlan)],
    sources: &SourceCatalog,
    cfg: &PhysicalConfig,
    share: bool,
) -> Result<MultiBuild, BuildError> {
    let mut b = Builder {
        g: GraphBuilder::new(),
        sources: SourceLookup::Shared(sources),
        cfg,
        positions: 0,
        source_cfgs: HashMap::new(),
        expected_source_events: 0,
        share: share.then(ShareCache::default),
    };
    let mut sinks = Vec::with_capacity(plans.len());
    for (_, plan) in plans {
        let typed = if cfg.schema_conformance {
            let res = typecheck::typecheck(plan);
            if !res.is_clean() {
                let msgs: Vec<String> = res.diagnostics.iter().map(|d| d.to_string()).collect();
                return Err(BuildError::SchemaRejected(msgs.join("; ")));
            }
            Some(res.root)
        } else {
            None
        };
        b.positions = plan.positions;
        // A new source config per pattern would be redundant but harmless;
        // per-type memoization already spans patterns via `source_cfgs`.
        sinks.push(b.lower_to_sink(plan, typed.as_ref())?);
    }
    // The report's structural half comes from the same canonical keys the
    // builder's cache used, so the static summary *is* the cache census;
    // only the source volume needs the physical build.
    let mut report = if share {
        share_summary(plans.iter().copied())
    } else {
        let mut r = share_summary(plans.iter().copied());
        // Isolated baseline: nothing merged.
        r.nodes_lowered = r.nodes_total;
        r.scans_lowered = r.scans_total;
        r.shared.clear();
        r
    };
    report.expected_source_events = b.expected_source_events;
    Ok(MultiBuild {
        graph: b.g,
        sinks,
        share: report,
    })
}

#[derive(Clone, Copy)]
struct Built {
    id: NodeId,
    parallelism: usize,
}

/// Where the builder resolves scanned streams from.
enum SourceLookup<'a> {
    /// A borrowed plain map (single-pattern builds): each stream is
    /// `Arc`ed on first use — one copy per event type, as before.
    Plain(&'a HashMap<EventType, Vec<Event>>),
    /// A pre-`Arc`ed catalog shared across patterns: no copying at all.
    Shared(&'a SourceCatalog),
}

impl SourceLookup<'_> {
    fn get(&self, etype: EventType) -> Option<Arc<Vec<Event>>> {
        match self {
            SourceLookup::Plain(m) => m.get(&etype).map(|v| Arc::new(v.clone())),
            SourceLookup::Shared(m) => m.get(&etype).cloned(),
        }
    }
}

/// The sharing pass's lowering caches: canonical key → built node.
#[derive(Default)]
struct ShareCache {
    /// Plan-node cache (checked/filled by [`Builder::node`]).
    nodes: HashMap<String, Built>,
    /// Wrapper operators that are not plan nodes themselves — inter-join
    /// dedups and per-pattern projection/dedup tails — keyed by a
    /// decorated canonical key so they can be shared without being
    /// counted as plan nodes.
    aux: HashMap<String, Built>,
}

struct Builder<'a> {
    g: GraphBuilder,
    sources: SourceLookup<'a>,
    cfg: &'a PhysicalConfig,
    positions: usize,
    /// Shared per-type event arrays; each scan gets its *own* source node
    /// over the shared array (like reading the same input as separate
    /// DataStreams), so the scan's filter chains into the source task.
    source_cfgs: HashMap<EventType, SourceConfig>,
    /// Events the created source nodes will replay in total (Σ of stream
    /// length over every source node) — the multi-pattern share oracle's
    /// prediction for `RunReport::source_events`.
    expected_source_events: u64,
    /// `Some` while lowering a shared multi-pattern batch: structurally
    /// equal subtrees resolve to the already-built node.
    share: Option<ShareCache>,
}

impl<'a> Builder<'a> {
    /// Shard-group size for a keyed stateful node, when sharding is both
    /// configured ([`PhysicalConfig::shards`]) and safe. With the
    /// typechecker on, placement is gated on its
    /// [`ShardSafety::ShardableByKey`] verdict — a node the analysis
    /// cannot prove key-local keeps plain hash-mod placement. Without the
    /// typechecker the plan's own `ByKey` partitioning claim is trusted,
    /// exactly as hash-mod lowering already trusts it.
    fn shard_par(&self, typed: Option<&TypedNode>) -> Option<usize> {
        let n = self.cfg.shards?;
        match typed {
            Some(t) if t.safety != ShardSafety::ShardableByKey => None,
            _ => Some(n),
        }
    }

    fn source(&mut self, etype: EventType) -> Result<NodeId, BuildError> {
        let cfg = match self.source_cfgs.get(&etype) {
            Some(cfg) => cfg.clone(),
            None => {
                let events = self
                    .sources
                    .get(etype)
                    .ok_or(BuildError::MissingSource(etype))?;
                let mut sc = SourceConfig::from_shared(events)
                    .with_watermark_every(self.cfg.watermark_every)
                    .with_watermark_lag(self.cfg.watermark_lag);
                if let Some(rate) = self.cfg.source_rate {
                    sc = sc.with_rate(rate);
                }
                self.source_cfgs.insert(etype, sc.clone());
                sc
            }
        };
        self.expected_source_events += cfg.events.len() as u64;
        Ok(self.g.source_with(format!("src:{etype}"), cfg, 1))
    }

    /// Lower `n`; in conformance mode (`typed` present) splice the edge
    /// assertion operator onto its output.
    ///
    /// Under a shared multi-pattern build this is also the interning
    /// point: a subtree whose [`canonical_key`] was lowered before (by
    /// this or an earlier pattern) resolves to the existing node, and
    /// its output edge fans out to the new consumer. The conformance
    /// assertion is part of the cached chain — the specs it checks are
    /// invariant under the variable renaming canonicalization quotients
    /// out, so one asserted edge serves every consumer.
    fn node(&mut self, n: &PlanNode, typed: Option<&TypedNode>) -> Result<Built, BuildError> {
        let key = self.share.as_ref().map(|_| canonical_key(n));
        if let (Some(k), Some(share)) = (key.as_deref(), self.share.as_ref()) {
            if let Some(b) = share.nodes.get(k) {
                return Ok(*b);
            }
        }
        let built = self.node_inner(n, typed)?;
        let built = match typed {
            Some(t) => self.conformance(built, t),
            None => built,
        };
        if let (Some(k), Some(share)) = (key, self.share.as_mut()) {
            share.nodes.insert(k, built);
        }
        Ok(built)
    }

    /// Look up / fill the wrapper-operator cache (shared builds only;
    /// otherwise just runs `build`).
    fn cached_aux(&mut self, key: Option<String>, build: impl FnOnce(&mut Self) -> Built) -> Built {
        if let (Some(k), Some(share)) = (key.as_deref(), self.share.as_ref()) {
            if let Some(b) = share.aux.get(k) {
                return *b;
            }
        }
        let built = build(self);
        if let (Some(k), Some(share)) = (key, self.share.as_mut()) {
            share.aux.insert(k, built);
        }
        built
    }

    /// The per-pattern tail shared by both build entry points: final
    /// position-order projection (except union/aggregate roots, which
    /// handle it internally), optional output dedup, and the sink. The
    /// projection and dedup participate in sharing (two identical plans
    /// differ only in their sinks); the sink never does.
    fn lower_to_sink(
        &mut self,
        plan: &LogicalPlan,
        typed: Option<&TypedNode>,
    ) -> Result<SinkId, BuildError> {
        let root = self.node(&plan.root, typed)?;
        let root_key = self.share.as_ref().map(|_| canonical_key(&plan.root));
        let mut root = match &plan.root {
            // Union children were already projected; everything else gets
            // the final position-order projection here.
            PlanNode::Union { .. } | PlanNode::Aggregate { .. } => root,
            _ => {
                let layout = plan.root.layout();
                self.cached_aux(root_key.as_ref().map(|k| format!("Π({k})")), |b| {
                    b.project(root, layout)
                })
            }
        };
        if self.cfg.dedup_output {
            let horizon = asp::time::Duration(2 * plan_window_ms(&plan.root));
            root = self.cached_aux(
                root_key.map(|k| format!("δout{}({k})", horizon.millis())),
                |b| {
                    let id = b.g.unary(
                        root.id,
                        Exchange::Rebalance,
                        1,
                        Box::new(move |_| Box::new(DedupOp::new("δ:output", horizon))),
                    );
                    Built { id, parallelism: 1 }
                },
            );
        }
        let sink_mode = if self.cfg.collect_output {
            SinkMode::Collect
        } else {
            SinkMode::CountOnly
        };
        Ok(self
            .g
            .sink_with_mode(root.id, Exchange::Rebalance, sink_mode))
    }

    fn node_inner(&mut self, n: &PlanNode, typed: Option<&TypedNode>) -> Result<Built, BuildError> {
        let child = |i: usize| typed.and_then(|t| t.children.get(i));
        match n {
            PlanNode::Scan {
                etype,
                type_name,
                leaf,
                var,
                predicates,
            } => {
                let src = self.source(*etype)?;
                let name = format!("σ:{type_name}[e{}]", var + 1);
                // Prefer the declarative (vectorizable) form; fall back to
                // the closure when a residual predicate doesn't fit it.
                let id = match scan_spec(leaf, *var, predicates) {
                    Some(spec) => self.g.unary(
                        src,
                        Exchange::Forward,
                        1,
                        Box::new(move |_| {
                            Box::new(FilterOp::with_spec(name.clone(), spec.clone()))
                        }),
                    ),
                    None => {
                        let pred = scan_predicate(leaf, *var, predicates, self.positions);
                        self.g.unary(
                            src,
                            Exchange::Forward,
                            1,
                            Box::new(move |_| Box::new(FilterOp::new(name.clone(), pred.clone()))),
                        )
                    }
                };
                Ok(Built { id, parallelism: 1 })
            }

            PlanNode::Join {
                left,
                right,
                windowing,
                partitioning,
                order_pairs,
                predicates,
                span_ms,
                ats_check,
                key_pair,
            } => {
                let ll = left.layout();
                let rl = right.layout();
                let l = self.node(left, child(0))?;
                let l = self.maybe_dedup(l, left);
                let r = self.node(right, child(1))?;
                let r = self.maybe_dedup(r, right);
                let shard_par = match partitioning {
                    Partitioning::ByKey => self.shard_par(typed),
                    Partitioning::Global => None,
                };
                let (l, r, par) = match partitioning {
                    Partitioning::ByKey => {
                        // Co-partitioning: re-key each side on its equi-
                        // class variable's sensor id (an input produced by
                        // a *global* sub-join carries the uniform key).
                        let (kl, kr) = key_pair.expect("ByKey join has a key pair");
                        let l = self.rekey(l, &ll, kl);
                        let r = self.rekey(r, &rl, kr);
                        (l, r, shard_par.unwrap_or(self.cfg.parallelism))
                    }
                    Partitioning::Global => {
                        // Uniform key → single partition (Section 4.2.1).
                        (self.uniform_key(l), self.uniform_key(r), 1)
                    }
                };
                let theta = join_theta(JoinThetaSpec {
                    left_layout: ll,
                    right_layout: rl,
                    order_pairs: order_pairs.clone(),
                    predicates: predicates.clone(),
                    span_ms: *span_ms,
                    ats_check: *ats_check,
                    positions: self.positions,
                });
                let windowing = *windowing;
                let limit = self.cfg.memory_limit;
                let name = format!("⋈{windowing}");
                let factory: Box<dyn Fn(usize) -> Box<dyn Operator> + Send> =
                    Box::new(move |_| match windowing {
                        JoinWindowing::Sliding { size, slide } => {
                            let mut op = WindowJoinOp::new(
                                name.clone(),
                                SlidingWindows::new(size, slide),
                                theta.clone(),
                                TsRule::Min,
                            );
                            if let Some(l) = limit {
                                op = op.with_memory_limit(l);
                            }
                            Box::new(op)
                        }
                        JoinWindowing::Interval { lower, upper } => {
                            let mut op = IntervalJoinOp::new(
                                name.clone(),
                                IntervalBounds { lower, upper },
                                theta.clone(),
                                TsRule::Min,
                            );
                            if let Some(l) = limit {
                                op = op.with_memory_limit(l);
                            }
                            Box::new(op)
                        }
                    });
                let id = self.g.nary(
                    &[(l.id, Exchange::Hash), (r.id, Exchange::Hash)],
                    par,
                    factory,
                );
                if shard_par.is_some() && par > 1 {
                    self.g.shard_node(id);
                }
                Ok(Built {
                    id,
                    parallelism: par,
                })
            }

            PlanNode::Union { inputs } => {
                let mut built = Vec::with_capacity(inputs.len());
                for (ix, i) in inputs.iter().enumerate() {
                    let b = self.node(i, child(ix))?;
                    // Project each branch before the union so matches are in
                    // canonical position order regardless of branch shape.
                    let b = match i {
                        PlanNode::Aggregate { .. } => b,
                        _ => self.project(b, i.layout()),
                    };
                    built.push(b);
                }
                let ports = built.len();
                let edges: Vec<(NodeId, Exchange)> =
                    built.iter().map(|b| (b.id, Exchange::Rebalance)).collect();
                let id = self.g.nary(
                    &edges,
                    1,
                    Box::new(move |_| Box::new(UnionOp::new("∪", ports))),
                );
                Ok(Built { id, parallelism: 1 })
            }

            PlanNode::Aggregate {
                input,
                m,
                window,
                partitioning,
            } => {
                let inp = self.node(input, child(0))?;
                let shard_par = match partitioning {
                    Partitioning::ByKey => self.shard_par(typed),
                    Partitioning::Global => None,
                };
                let (inp, par) = match partitioning {
                    Partitioning::ByKey => (inp, shard_par.unwrap_or(self.cfg.parallelism)),
                    Partitioning::Global => (self.uniform_key(inp), 1),
                };
                let m = *m;
                let windows = SlidingWindows::new(window.size, window.slide);
                let id = self.g.unary(
                    inp.id,
                    Exchange::Hash,
                    par,
                    Box::new(move |_| {
                        Box::new(WindowAggregateOp::count_at_least(
                            format!("γcount≥{m}"),
                            windows,
                            m,
                        ))
                    }),
                );
                if shard_par.is_some() && par > 1 {
                    self.g.shard_node(id);
                }
                Ok(Built {
                    id,
                    parallelism: par,
                })
            }

            PlanNode::NextOccurrence { trigger, marker, w } => {
                let t = self.node(trigger, child(0))?;
                // Physical marker scan: source + the absent leaf's filters.
                let src = self.source(marker.etype)?;
                let mspec = leaf_spec(marker);
                let mname = format!("σ:¬{}", marker.type_name);
                let mfil = self.g.unary(
                    src,
                    Exchange::Forward,
                    1,
                    Box::new(move |_| Box::new(FilterOp::with_spec(mname.clone(), mspec.clone()))),
                );
                let trigger_type = trigger_type_of(trigger);
                let marker_type = marker.etype;
                let w = *w;
                let is_trigger: UnaryPredicate =
                    Arc::new(move |t: &Tuple| t.events[0].etype == trigger_type);
                let is_marker: UnaryPredicate =
                    Arc::new(move |t: &Tuple| t.events[0].etype == marker_type);
                let id = self.g.nary(
                    &[(t.id, Exchange::Rebalance), (mfil, Exchange::Rebalance)],
                    1,
                    Box::new(move |_| {
                        Box::new(NextOccurrenceOp::new(
                            "nextOcc",
                            is_trigger.clone(),
                            is_marker.clone(),
                            w,
                        ))
                    }),
                );
                Ok(Built { id, parallelism: 1 })
            }

            PlanNode::Project { input, layout } => {
                let inp = self.node(input, child(0))?;
                let in_layout = input.layout();
                // Output position i takes the input position holding
                // layout[i]; the typechecker guarantees a permutation
                // (S004), the length guard below keeps a defective plan
                // from panicking in release builds.
                let perm: Vec<usize> = layout
                    .iter()
                    .filter_map(|v| in_layout.iter().position(|x| x == v))
                    .collect();
                let arity = in_layout.len();
                let par = inp.parallelism;
                let id = self.g.unary(
                    inp.id,
                    Exchange::Forward,
                    par,
                    Box::new(move |_| {
                        let perm = perm.clone();
                        Box::new(MapOp::new(
                            "Π:layout",
                            Arc::new(move |mut t: Tuple| {
                                if perm.len() == arity && t.events.len() == arity {
                                    t.set_events(perm.iter().map(|&i| t.events[i]).collect());
                                }
                                t
                            }),
                        ))
                    }),
                );
                Ok(Built {
                    id,
                    parallelism: par,
                })
            }
        }
    }

    /// Schema-conformance assertion: a stateless pass-through operator on
    /// the node's output edge that panics (surfacing as a worker panic in
    /// the run report) if a tuple does not match any inferred variant, or
    /// carries an annotation or partition key the schema forbids.
    fn conformance(&mut self, input: Built, typed: &TypedNode) -> Built {
        let specs: Vec<(Vec<EventType>, bool, bool, Option<usize>)> = typed
            .schema
            .variants
            .iter()
            .map(|v| {
                let etypes: Vec<EventType> = v.columns.iter().map(|c| c.etype).collect();
                let key_idx = match typed.schema.key {
                    KeyProvenance::SensorId(kv) => v.columns.iter().position(|c| c.var == kv),
                    _ => None,
                };
                (etypes, v.ats, v.agg, key_idx)
            })
            .collect();
        let key = typed.schema.key;
        let label = typed.label.clone();
        let par = input.parallelism;
        let id = self.g.unary(
            input.id,
            Exchange::Forward,
            par,
            Box::new(move |_| {
                let specs = specs.clone();
                let label = label.clone();
                Box::new(MapOp::new(
                    format!("✓schema:{label}"),
                    Arc::new(move |t: Tuple| {
                        check_conformance(&t, &specs, key, &label);
                        t
                    }),
                ))
            }),
        );
        Built {
            id,
            parallelism: par,
        }
    }

    /// Intermediate sliding joins re-emit each composite once per
    /// overlapping pane; deduplicate before feeding the next join so the
    /// duplicate factor does not compound multiplicatively down the chain
    /// (duplicates are byte-identical, so this is semantics-preserving).
    fn maybe_dedup(&mut self, input: Built, plan: &PlanNode) -> Built {
        let PlanNode::Join {
            windowing: JoinWindowing::Sliding { size, .. },
            ..
        } = plan
        else {
            return input;
        };
        let horizon = *size;
        let par = input.parallelism;
        // The dedup is state-bearing and a pure function of its input, so
        // under sharing it rides with the join it wraps: consumers of the
        // same sliding sub-join share one dedup instead of re-buffering
        // the horizon each.
        let key = self
            .share
            .as_ref()
            .map(|_| format!("δ({})", canonical_key(plan)));
        self.cached_aux(key, |b| {
            let id = b.g.unary(
                input.id,
                Exchange::Hash,
                par,
                Box::new(move |_| Box::new(DedupOp::new("δ:intermediate", horizon))),
            );
            Built {
                id,
                parallelism: par,
            }
        })
    }

    /// Set the partition key to the sensor id of the constituent bound at
    /// pattern position `var`.
    fn rekey(&mut self, input: Built, layout: &[VarId], var: VarId) -> Built {
        let Some(idx) = layout.iter().position(|v| *v == var) else {
            return input;
        };
        let id = self.g.unary(
            input.id,
            Exchange::Forward,
            input.parallelism,
            Box::new(move |_| {
                Box::new(MapOp::key_by_event_id(
                    format!("Π:key←e{}.id", var + 1),
                    idx,
                ))
            }),
        );
        Built {
            id,
            parallelism: input.parallelism,
        }
    }

    fn uniform_key(&mut self, input: Built) -> Built {
        let id = self.g.unary(
            input.id,
            Exchange::Rebalance,
            1,
            Box::new(|_| Box::new(MapOp::uniform_key("Π:key←0", 0))),
        );
        Built { id, parallelism: 1 }
    }

    /// Final projection: order constituents by pattern position and apply
    /// the complete-match timestamp rule (max).
    fn project(&mut self, input: Built, layout: Vec<VarId>) -> Built {
        let id = self.g.unary(
            input.id,
            Exchange::Rebalance,
            1,
            Box::new(move |_| {
                let layout = layout.clone();
                Box::new(MapOp::new(
                    "Π:order,ts←max",
                    Arc::new(move |mut t: Tuple| {
                        if t.events.len() == layout.len() {
                            let mut order: Vec<usize> = (0..layout.len()).collect();
                            order.sort_by_key(|&i| layout[i]);
                            if order.windows(2).any(|w| w[0] > w[1]) {
                                t.set_events(order.iter().map(|&i| t.events[i]).collect());
                            }
                        }
                        t.ts = t.ts_end();
                        t
                    }),
                ))
            }),
        );
        Built { id, parallelism: 1 }
    }
}

/// Assert one tuple against the inferred edge schema; panics with the
/// node label on violation (schema-conformance mode only).
fn check_conformance(
    t: &Tuple,
    specs: &[(Vec<EventType>, bool, bool, Option<usize>)],
    key: KeyProvenance,
    label: &str,
) {
    let matched = specs.iter().find(|(etypes, ats, agg, _)| {
        etypes.len() == t.events.len()
            && etypes
                .iter()
                .zip(t.events.iter())
                .all(|(e, ev)| *e == ev.etype)
            && *ats == t.ats.is_some()
            && *agg == t.agg.is_some()
    });
    let Some((_, _, _, key_idx)) = matched else {
        panic!(
            "schema conformance violated at `{label}`: tuple with {} event(s) \
             (ats={}, agg={}) matches no inferred variant",
            t.events.len(),
            t.ats.is_some(),
            t.agg.is_some()
        );
    };
    match key {
        KeyProvenance::SensorId(kv) => {
            if let Some(idx) = key_idx {
                let want = t.events[*idx].id as asp::tuple::Key;
                assert!(
                    t.key == want,
                    "key conformance violated at `{label}`: key {} ≠ id(e{}) = {want}",
                    t.key,
                    kv + 1
                );
            }
        }
        KeyProvenance::Uniform => assert!(
            t.key == 0,
            "key conformance violated at `{label}`: uniform edge carries key {}",
            t.key
        ),
        KeyProvenance::Mixed => {}
    }
}

/// The largest window span in the plan (bounds how long a duplicate can
/// recur).
fn plan_window_ms(plan: &PlanNode) -> i64 {
    match plan {
        PlanNode::Scan { .. } => 0,
        PlanNode::Join {
            left,
            right,
            span_ms,
            ..
        } => (*span_ms)
            .max(plan_window_ms(left))
            .max(plan_window_ms(right)),
        PlanNode::Union { inputs } => inputs.iter().map(plan_window_ms).max().unwrap_or(0),
        PlanNode::Aggregate { input, window, .. } => {
            window.size.millis().max(plan_window_ms(input))
        }
        PlanNode::NextOccurrence { trigger, w, .. } => w.millis().max(plan_window_ms(trigger)),
        PlanNode::Project { input, .. } => plan_window_ms(input),
    }
}

fn trigger_type_of(plan: &PlanNode) -> EventType {
    match plan {
        PlanNode::Scan { etype, .. } => *etype,
        PlanNode::Join { left, .. } => trigger_type_of(left),
        PlanNode::Union { inputs } => trigger_type_of(&inputs[0]),
        PlanNode::Aggregate { input, .. } => trigger_type_of(input),
        PlanNode::NextOccurrence { trigger, .. } => trigger_type_of(trigger),
        // A projection reorders constituents: the first *output* position
        // is layout[0], so resolve that variable's scan type.
        PlanNode::Project { input, layout } => layout
            .first()
            .and_then(|first| {
                input.scans().iter().find_map(|s| match s {
                    PlanNode::Scan { etype, var, .. } if var == first => Some(*etype),
                    _ => None,
                })
            })
            .unwrap_or_else(|| trigger_type_of(input)),
    }
}

/// Compile a scan's leaf filters + residual predicates into a tuple filter.
fn scan_predicate(
    leaf: &Leaf,
    var: VarId,
    predicates: &[Predicate],
    positions: usize,
) -> UnaryPredicate {
    let leaf = leaf.clone();
    let preds = predicates.to_vec();
    let size = positions.max(var + 1);
    Arc::new(move |t: &Tuple| {
        let e = &t.events[0];
        if !leaf.accepts(e) {
            return false;
        }
        if preds.is_empty() {
            return true;
        }
        let mut binding: Vec<Option<Event>> = vec![None; size];
        binding[var] = Some(*e);
        preds.iter().all(|p| p.eval_sparse(&binding))
    })
}

/// `sea::predicate::CmpOp` → `asp::operator::Cmp` (1:1 by construction).
fn cmp_of(op: CmpOp) -> Cmp {
    match op {
        CmpOp::Lt => Cmp::Lt,
        CmpOp::Le => Cmp::Le,
        CmpOp::Gt => Cmp::Gt,
        CmpOp::Ge => Cmp::Ge,
        CmpOp::Eq => Cmp::Eq,
        CmpOp::Ne => Cmp::Ne,
    }
}

/// A declarative filter from a bare leaf (used for the NSEQ marker scan):
/// the leaf's type gate plus its local thresholds, which are exactly
/// [`FilterSpec`] clauses.
fn leaf_spec(leaf: &Leaf) -> FilterSpec {
    let mut spec = FilterSpec::for_etype(leaf.etype);
    for f in &leaf.filters {
        spec = spec.clause(f.attr, cmp_of(f.op), f.value);
    }
    spec
}

/// Try to express a scan's leaf filters + residual predicates as a
/// declarative [`FilterSpec`] so the σ runs vectorized on the columnar
/// plane. Returns `None` when any predicate needs the closure path.
///
/// With only `var` bound at the scan, `eval_sparse` makes a predicate
/// vacuously true unless every variable it references is `var`; the
/// remaining shapes are `var.attr ⋈ const` (kept, flipped if the constant
/// is on the left) and same-event attribute comparisons or constant-only
/// predicates, which don't fit the spec and force the fallback.
fn scan_spec(leaf: &Leaf, var: VarId, predicates: &[Predicate]) -> Option<FilterSpec> {
    let mut spec = leaf_spec(leaf);
    for p in predicates {
        match (&p.lhs, &p.rhs) {
            (Expr::Var(v, a), Expr::Const(c)) if *v == var => {
                spec = spec.clause(*a, cmp_of(p.op), *c);
            }
            // `c ⋈ e.a` ⇔ `e.a ⋈⁻¹ c` (mirror the comparison).
            (Expr::Const(c), Expr::Var(v, a)) if *v == var => {
                let flipped = match p.op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    CmpOp::Eq => CmpOp::Eq,
                    CmpOp::Ne => CmpOp::Ne,
                };
                spec = spec.clause(*a, cmp_of(flipped), *c);
            }
            // References an unbound variable: vacuous at the scan.
            (Expr::Var(v, _), Expr::Const(_)) | (Expr::Const(_), Expr::Var(v, _)) if *v != var => {
                continue;
            }
            (Expr::Var(l, _), Expr::Var(r, _)) if *l != var || *r != var => continue,
            // Same-event attr-vs-attr or const-vs-const: closure path.
            _ => return None,
        }
    }
    Some(spec)
}

struct JoinThetaSpec {
    left_layout: Vec<VarId>,
    right_layout: Vec<VarId>,
    order_pairs: Vec<(VarId, VarId)>,
    predicates: Vec<Predicate>,
    span_ms: i64,
    ats_check: Option<VarId>,
    positions: usize,
}

/// Compile the join condition: window-span guard + newly-checkable order
/// pairs + newly-bound predicates + the NSEQ `ats` selection.
fn join_theta(spec: JoinThetaSpec) -> JoinPredicate {
    let JoinThetaSpec {
        left_layout,
        right_layout,
        order_pairs,
        predicates,
        span_ms,
        ats_check,
        positions,
    } = spec;
    let size = positions.max(
        left_layout
            .iter()
            .chain(&right_layout)
            .map(|v| v + 1)
            .max()
            .unwrap_or(0),
    );
    Arc::new(move |l: &Tuple, r: &Tuple| {
        // Window constraint over the full candidate match: the pairwise
        // |ts_i − ts_j| < W requirement of the data model.
        let begin = l.ts_begin().min(r.ts_begin());
        let end = l.ts_end().max(r.ts_end());
        if (end - begin).millis() >= span_ms {
            return false;
        }
        // Sparse binding by pattern position.
        let mut binding: Vec<Option<Event>> = vec![None; size];
        for (i, v) in left_layout.iter().enumerate() {
            if let Some(e) = l.events.get(i) {
                binding[*v] = Some(*e);
            }
        }
        for (i, v) in right_layout.iter().enumerate() {
            if let Some(e) = r.events.get(i) {
                binding[*v] = Some(*e);
            }
        }
        for (a, b) in &order_pairs {
            if let (Some(ea), Some(eb)) = (&binding[*a], &binding[*b]) {
                if ea.ts >= eb.ts {
                    return false;
                }
            }
        }
        if !predicates.iter().all(|p| p.eval_sparse(&binding)) {
            return false;
        }
        if let Some(v) = ats_check {
            let Some(ats) = l.ats.or(r.ats) else {
                return false;
            };
            let Some(last) = &binding[v] else {
                return false;
            };
            // σ_{ats ≥ e_v.ts}: no negated event in the open interval
            // (e1.ts, e_v.ts) — see the NextOccurrence docs for why `≥`
            // (not `>`) is the exact rewrite of Eq. 14.
            if ats < last.ts {
                return false;
            }
        }
        true
    })
}

/// The timestamp at which a projected match is considered detected.
pub fn detection_ts(t: &Tuple) -> Timestamp {
    t.ts_end()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{translate, MapperOptions};
    use sea::pattern::{builders, WindowSpec};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);

    fn ev(t: EventType, id: u32, min: i64, v: f64) -> Event {
        Event::new(t, id, Timestamp::from_minutes(min), v)
    }

    #[test]
    fn missing_source_is_reported() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let plan = translate(&p, &MapperOptions::plain()).unwrap();
        let sources = HashMap::from([(Q, vec![ev(Q, 1, 0, 1.0)])]);
        match build_pipeline(&plan, &sources, &PhysicalConfig::default()) {
            Err(e) => assert_eq!(e, BuildError::MissingSource(V)),
            Ok(_) => panic!("expected missing-source error"),
        }
    }

    #[test]
    fn theta_span_guard_rejects_wide_matches() {
        let theta = join_theta(JoinThetaSpec {
            left_layout: vec![0],
            right_layout: vec![1],
            order_pairs: vec![(0, 1)],
            predicates: vec![],
            span_ms: 4 * asp::time::MINUTE_MS,
            ats_check: None,
            positions: 2,
        });
        let a = Tuple::from_event(ev(Q, 1, 0, 1.0));
        let near = Tuple::from_event(ev(V, 1, 3, 2.0));
        let far = Tuple::from_event(ev(V, 1, 4, 2.0));
        let before = Tuple::from_event(ev(V, 1, 0, 2.0));
        assert!(theta(&a, &near));
        assert!(!theta(&a, &far), "exactly W apart rejected");
        assert!(!theta(&a, &before), "order pair enforced (equal ts)");
    }

    #[test]
    fn theta_ats_check() {
        let theta = join_theta(JoinThetaSpec {
            left_layout: vec![0],
            right_layout: vec![1],
            order_pairs: vec![(0, 1)],
            predicates: vec![],
            span_ms: 10 * asp::time::MINUTE_MS,
            ats_check: Some(1),
            positions: 2,
        });
        let mut l = Tuple::from_event(ev(Q, 1, 0, 1.0));
        let r = Tuple::from_event(ev(V, 1, 5, 2.0));
        l.ats = Some(Timestamp::from_minutes(7));
        assert!(theta(&l, &r), "marker after e3 → match survives");
        l.ats = Some(Timestamp::from_minutes(5));
        assert!(theta(&l, &r), "marker AT e3.ts → open interval, survives");
        l.ats = Some(Timestamp::from_minutes(3));
        assert!(!theta(&l, &r), "marker strictly inside → negated");
        l.ats = None;
        assert!(!theta(&l, &r), "missing annotation rejects");
    }
}
