//! The logical ASP query plan produced by the operator mapping
//! (paper Section 4, Table 1).
//!
//! A plan is a tree of relational stream operators: typed scans (with
//! pushed-down selections), window joins (sliding or interval — O1), set
//! union, count aggregation (O2), and the NSEQ next-occurrence rewrite.
//! Each node tracks its *layout* — which pattern positions its output
//! tuples' constituent events occupy — so that predicates and ordering
//! constraints stay checkable under arbitrary join orders (the manual
//! join-reordering opportunity of Section 4.2.2).

use std::fmt;

use asp::event::EventType;
use asp::time::Duration;

use sea::pattern::{Leaf, WindowSpec};
use sea::predicate::{Predicate, VarId};

/// How a join discretizes time (Section 4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinWindowing {
    /// Apriori sliding windows `(W, s)`; produces duplicates, needs a
    /// stream-dependent slide.
    Sliding {
        /// Window size `W`.
        size: Duration,
        /// Window slide `s` (0 < s ≤ W).
        slide: Duration,
    },
    /// Content-based interval join with exclusive bounds
    /// `(ts + lower, ts + upper)` — duplicate-free, slide-free (O1).
    Interval {
        /// Exclusive lower bound on `r.ts − l.ts` (negative for AND).
        lower: Duration,
        /// Exclusive upper bound on `r.ts − l.ts`.
        upper: Duration,
    },
}

impl fmt::Display for JoinWindowing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinWindowing::Sliding { size, slide } => write!(f, "SLIDING({size}, {slide})"),
            JoinWindowing::Interval { lower, upper } => write!(f, "INTERVAL({lower}, {upper})"),
        }
    }
}

/// How a join's inputs are partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// A preceding map assigns one uniform key — single partition, no
    /// parallelization potential (the Cartesian-product workaround of
    /// Section 4.2.1).
    Global,
    /// Partition by the sensor-id equi-key (O3): the join parallelizes.
    ByKey,
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partitioning::Global => write!(f, "global"),
            Partitioning::ByKey => write!(f, "by-key"),
        }
    }
}

/// A logical plan node.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Typed scan `σ_filters(T)` with pushed-down per-event selections.
    Scan {
        /// The scanned event type.
        etype: EventType,
        /// Human-readable name of the type (plan printing).
        type_name: String,
        /// The leaf carries its local filters (type test + thresholds).
        leaf: Leaf,
        /// Pattern position this scan binds.
        var: VarId,
        /// Pushed-down single-variable predicates that are not simple
        /// attribute-vs-constant thresholds (e.g. `e1.value < e1.ts`).
        predicates: Vec<Predicate>,
    },
    /// Binary window join `left ⋈ right` under the given windowing.
    Join {
        /// Left (build) input.
        left: Box<PlanNode>,
        /// Right (probe) input.
        right: Box<PlanNode>,
        /// Time discretization: sliding windows or interval bounds.
        windowing: JoinWindowing,
        /// Global or key-partitioned execution.
        partitioning: Partitioning,
        /// Ordering constraints `a.ts < b.ts` newly checkable here.
        order_pairs: Vec<(VarId, VarId)>,
        /// Cross predicates that become fully bound at this join.
        predicates: Vec<Predicate>,
        /// Enforce `span(all bound events) < W` (always on for
        /// correctness under composite inputs — see DESIGN.md).
        span_ms: i64,
        /// Check the NSEQ annotation `left.ats ≥ right-var ts` here.
        ats_check: Option<VarId>,
        /// For [`Partitioning::ByKey`]: the pattern variables (one per
        /// side) whose sensor id is the partition key. The physical
        /// planner re-keys each input on its variable so the sides are
        /// co-partitioned even when an input comes from a global join.
        key_pair: Option<(VarId, VarId)>,
    },
    /// Set union of schema-compatible branches (the OR mapping).
    Union {
        /// The unioned branches (≥ 2).
        inputs: Vec<PlanNode>,
    },
    /// Windowed count-aggregation `γ_{count ≥ m}` (the O2 ITER mapping).
    Aggregate {
        /// The aggregated input.
        input: Box<PlanNode>,
        /// Emit a window iff it holds at least `m` constituents.
        m: u64,
        /// The window/slide the aggregation is computed over.
        window: WindowSpec,
        /// Global or key-partitioned execution.
        partitioning: Partitioning,
    },
    /// The NSEQ rewrite UDF: annotate each trigger with the ts of the next
    /// marker within `W` (`ats`).
    NextOccurrence {
        /// Producer of candidate (trigger) tuples.
        trigger: Box<PlanNode>,
        /// The negated leaf whose next occurrence is sought.
        marker: Leaf,
        /// How far ahead to look for the marker.
        w: Duration,
    },
    /// Explicit layout permutation `π_layout` — reorder the input's
    /// constituent events into the declared position order. The physical
    /// planner lowers it to a stateless map; the typechecker rejects a
    /// layout that is not a permutation of the input's columns (S004).
    Project {
        /// The projected input.
        input: Box<PlanNode>,
        /// Output position order; must be a permutation of
        /// `input.layout()`.
        layout: Vec<VarId>,
    },
}

impl PlanNode {
    /// Pattern positions of this node's output constituents, in tuple
    /// order (empty for summary outputs like aggregates and mixed unions).
    pub fn layout(&self) -> Vec<VarId> {
        match self {
            PlanNode::Scan { var, .. } => vec![*var],
            PlanNode::Join { left, right, .. } => {
                let mut l = left.layout();
                l.extend(right.layout());
                l
            }
            PlanNode::Union { .. } => Vec::new(),
            PlanNode::Aggregate { .. } => Vec::new(),
            PlanNode::NextOccurrence { trigger, .. } => trigger.layout(),
            PlanNode::Project { layout, .. } => layout.clone(),
        }
    }

    /// Number of join operators in the plan — the decomposition degree the
    /// paper contrasts with the single CEP operator.
    pub fn join_count(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 0,
            PlanNode::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            PlanNode::Union { inputs } => inputs.iter().map(PlanNode::join_count).sum(),
            PlanNode::Aggregate { input, .. } => input.join_count(),
            PlanNode::NextOccurrence { trigger, .. } => trigger.join_count(),
            PlanNode::Project { input, .. } => input.join_count(),
        }
    }

    /// All scans in the plan, left to right.
    pub fn scans(&self) -> Vec<&PlanNode> {
        let mut out = Vec::new();
        self.collect_scans(&mut out);
        out
    }

    fn collect_scans<'a>(&'a self, out: &mut Vec<&'a PlanNode>) {
        match self {
            PlanNode::Scan { .. } => out.push(self),
            PlanNode::Join { left, right, .. } => {
                left.collect_scans(out);
                right.collect_scans(out);
            }
            PlanNode::Union { inputs } => inputs.iter().for_each(|i| i.collect_scans(out)),
            PlanNode::Aggregate { input, .. } => input.collect_scans(out),
            PlanNode::NextOccurrence { trigger, .. } => trigger.collect_scans(out),
            PlanNode::Project { input, .. } => input.collect_scans(out),
        }
    }

    /// Render an `EXPLAIN`-style indented tree.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::Scan {
                type_name,
                leaf,
                var,
                predicates,
                ..
            } => {
                let mut filters: Vec<String> =
                    leaf.filters.iter().map(|f| format!("{f}")).collect();
                filters.extend(predicates.iter().map(|p| p.to_string()));
                let _ = writeln!(
                    out,
                    "{pad}Scan {type_name} [e{}]{}",
                    var + 1,
                    if filters.is_empty() {
                        String::new()
                    } else {
                        format!(" σ({})", filters.join(" ∧ "))
                    }
                );
            }
            PlanNode::Join {
                left,
                right,
                windowing,
                partitioning,
                order_pairs,
                predicates,
                ats_check,
                ..
            } => {
                let mut conds: Vec<String> = order_pairs
                    .iter()
                    .map(|(a, b)| format!("e{}.ts < e{}.ts", a + 1, b + 1))
                    .collect();
                conds.extend(predicates.iter().map(|p| p.to_string()));
                if let Some(v) = ats_check {
                    conds.push(format!("ats ≥ e{}.ts", v + 1));
                }
                let _ = writeln!(
                    out,
                    "{pad}Join {windowing} [{partitioning}]{}",
                    if conds.is_empty() {
                        " (cross)".to_string()
                    } else {
                        format!(" on {}", conds.join(" ∧ "))
                    }
                );
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PlanNode::Union { inputs } => {
                let _ = writeln!(out, "{pad}Union");
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            PlanNode::Aggregate {
                input,
                m,
                window,
                partitioning,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}Aggregate count ≥ {m} over SLIDING({}, {}) [{partitioning}]",
                    window.size, window.slide
                );
                input.explain_into(out, depth + 1);
            }
            PlanNode::NextOccurrence { trigger, marker, w } => {
                let _ = writeln!(
                    out,
                    "{pad}NextOccurrence(¬{} within {w}) → ats",
                    marker.type_name
                );
                trigger.explain_into(out, depth + 1);
            }
            PlanNode::Project { input, layout } => {
                let cols: Vec<String> = layout.iter().map(|v| format!("e{}", v + 1)).collect();
                let _ = writeln!(out, "{pad}Project [{}]", cols.join(", "));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// A complete logical plan: the root node plus pattern-level metadata.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    /// The plan's root operator.
    pub root: PlanNode,
    /// Total bound positions of the pattern.
    pub positions: usize,
    /// Human-readable description of which mapping produced this plan.
    pub mapping: String,
    /// The pattern's window, kept so [`crate::lint`] can bound-check join
    /// windowing and UDF hold durations against the enclosing window.
    pub window: WindowSpec,
}

impl LogicalPlan {
    /// Render an `EXPLAIN`-style tree with the mapping header line.
    pub fn explain(&self) -> String {
        format!("-- mapping: {}\n{}", self.mapping, self.root.explain())
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::EventType;

    fn scan(t: u16, var: VarId) -> PlanNode {
        PlanNode::Scan {
            etype: EventType(t),
            type_name: format!("T{t}"),
            leaf: Leaf::new(EventType(t), format!("T{t}"), format!("e{}", var + 1)),
            var,
            predicates: vec![],
        }
    }

    #[test]
    fn layout_concatenates_left_to_right() {
        let j = PlanNode::Join {
            left: Box::new(scan(0, 2)),
            right: Box::new(scan(1, 0)),
            windowing: JoinWindowing::Sliding {
                size: Duration::from_minutes(4),
                slide: Duration::from_minutes(1),
            },
            partitioning: Partitioning::Global,
            order_pairs: vec![],
            predicates: vec![],
            span_ms: 4 * asp::time::MINUTE_MS,
            ats_check: None,
            key_pair: None,
        };
        assert_eq!(j.layout(), vec![2, 0]);
        assert_eq!(j.join_count(), 1);
        assert_eq!(j.scans().len(), 2);
    }

    #[test]
    fn explain_renders_tree() {
        let j = PlanNode::Join {
            left: Box::new(scan(0, 0)),
            right: Box::new(scan(1, 1)),
            windowing: JoinWindowing::Interval {
                lower: Duration::ZERO,
                upper: Duration::from_minutes(4),
            },
            partitioning: Partitioning::ByKey,
            order_pairs: vec![(0, 1)],
            predicates: vec![],
            span_ms: 4 * asp::time::MINUTE_MS,
            ats_check: None,
            key_pair: Some((0, 1)),
        };
        let text = j.explain();
        assert!(
            text.contains("Join INTERVAL(0min, 4min) [by-key] on e1.ts < e2.ts"),
            "{text}"
        );
        assert!(text.contains("Scan T0 [e1]"), "{text}");
    }
}
