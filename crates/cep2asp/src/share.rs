//! Shared-subplan optimization for multi-pattern jobs (multi-query
//! optimization, the capability the paper's Section 6 lists among those
//! serial CEP engines lack).
//!
//! Given a batch of translated [`LogicalPlan`]s, structurally equal
//! subtrees are interned into a DAG and lowered **once**, with the
//! runtime's fan-out edges feeding every consumer's remainder pipeline
//! and per-pattern sink. The interning key is a *canonical render* of the
//! whole subtree ([`canonical_key`]):
//!
//! * Pattern positions ([`VarId`]s) are rebased to their **rank** among
//!   the subtree's distinct variables (sorted ascending). The rebase is
//!   order-preserving, which is exactly what behavioral identity needs:
//!   every position-sensitive physical artifact — layout permutations,
//!   the final projection's sort by layout value, order pairs, key
//!   pairs — depends only on the *relative* order of the variables, so
//!   two subtrees with equal rank-rebased renders lower to operators
//!   that are behaviorally identical under variable renaming.
//! * Scans render their type, leaf filters, and the *effective* residual
//!   predicates (those whose variables are all the scan's own — a
//!   predicate referencing a foreign variable is vacuous at the scan
//!   under `eval_sparse`, in both the vectorized and the closure path,
//!   so it cannot distinguish two scans).
//! * Window/interval parameters render in milliseconds, float constants
//!   by their exact bit pattern (`f64::to_bits`), so `0.1 + 0.2`-style
//!   near-misses never merge.
//!
//! What is **never** shared: sinks (one per pattern, by construction),
//! and anything downstream of the first structural difference — sharing
//! is bottom-up, a differing parent keeps its own operators even when
//! both children are shared. Per-consumer attribution of the shared
//! nodes lives in [`ShareReport::shared`]; the runtime's `NodeStats`
//! keep one entry per *physical* node, and the report maps each back to
//! the patterns it serves.

use std::collections::HashMap;
use std::fmt::Write as _;

use sea::pattern::Leaf;
use sea::predicate::{Expr, Predicate, VarId};

use crate::plan::{JoinWindowing, LogicalPlan, PlanNode};

/// Render `n` to its canonical structural key: equal keys ⟹ the physical
/// lowerings are behaviorally identical modulo variable renaming (see
/// the module docs for the argument).
pub fn canonical_key(n: &PlanNode) -> String {
    let ranks = rank_map(n);
    let mut out = String::new();
    render(n, &ranks, &mut out);
    out
}

/// Order-preserving variable rebase: each distinct [`VarId`] of the
/// subtree maps to its rank among them, sorted ascending.
fn rank_map(n: &PlanNode) -> HashMap<VarId, usize> {
    let mut vars: Vec<VarId> = n
        .scans()
        .iter()
        .filter_map(|s| match s {
            PlanNode::Scan { var, .. } => Some(*var),
            _ => None,
        })
        .collect();
    vars.sort_unstable();
    vars.dedup();
    vars.into_iter().enumerate().map(|(i, v)| (v, i)).collect()
}

fn rank(v: VarId, ranks: &HashMap<VarId, usize>) -> usize {
    // A variable outside the subtree cannot occur in the rendered parts
    // (effective scan predicates and join conditions are fully bound);
    // fall back to an impossible rank rather than panic on a defective
    // plan — the typechecker owns rejecting those.
    ranks.get(&v).copied().unwrap_or(usize::MAX)
}

fn render_expr(e: &Expr, ranks: &HashMap<VarId, usize>, out: &mut String) {
    match e {
        Expr::Var(v, a) => {
            let _ = write!(out, "v{}.{a:?}", rank(*v, ranks));
        }
        Expr::Const(c) => {
            let _ = write!(out, "c{:016x}", c.to_bits());
        }
    }
}

fn render_pred(p: &Predicate, ranks: &HashMap<VarId, usize>, out: &mut String) {
    render_expr(&p.lhs, ranks, out);
    let _ = write!(out, "{:?}", p.op);
    render_expr(&p.rhs, ranks, out);
}

fn render_leaf(leaf: &Leaf, out: &mut String) {
    let _ = write!(out, "t{}", leaf.etype.0);
    for f in &leaf.filters {
        let _ = write!(out, ";f{:?}{:?}{:016x}", f.attr, f.op, f.value.to_bits());
    }
}

fn render(n: &PlanNode, ranks: &HashMap<VarId, usize>, out: &mut String) {
    match n {
        PlanNode::Scan {
            etype,
            leaf,
            var,
            predicates,
            ..
        } => {
            let _ = write!(out, "S(t{};v{};", etype.0, rank(*var, ranks));
            render_leaf(leaf, out);
            for p in predicates {
                // Only predicates fully bound at the scan filter anything
                // (foreign-variable references are vacuous here).
                if p.vars().iter().all(|v| *v == *var) {
                    out.push(';');
                    render_pred(p, ranks, out);
                }
            }
            out.push(')');
        }
        PlanNode::Join {
            left,
            right,
            windowing,
            partitioning,
            order_pairs,
            predicates,
            span_ms,
            ats_check,
            key_pair,
        } => {
            let _ = write!(out, "J(");
            match windowing {
                JoinWindowing::Sliding { size, slide } => {
                    let _ = write!(out, "wS{},{}", size.millis(), slide.millis());
                }
                JoinWindowing::Interval { lower, upper } => {
                    let _ = write!(out, "wI{},{}", lower.millis(), upper.millis());
                }
            }
            let _ = write!(out, ";p{partitioning:?};s{span_ms}");
            if let Some(v) = ats_check {
                let _ = write!(out, ";a{}", rank(*v, ranks));
            }
            if let Some((kl, kr)) = key_pair {
                let _ = write!(out, ";k{},{}", rank(*kl, ranks), rank(*kr, ranks));
            }
            out.push_str(";o[");
            for (a, b) in order_pairs {
                let _ = write!(out, "{}<{};", rank(*a, ranks), rank(*b, ranks));
            }
            out.push_str("];q[");
            for p in predicates {
                render_pred(p, ranks, out);
                out.push(';');
            }
            out.push_str("];L");
            render(left, ranks, out);
            out.push_str(";R");
            render(right, ranks, out);
            out.push(')');
        }
        PlanNode::Union { inputs } => {
            let _ = write!(out, "U({}", inputs.len());
            for i in inputs {
                // The physical union projects each branch to its own
                // layout first; the rebased layout is part of each
                // branch's key so equal renders imply equal projections.
                out.push_str(";[");
                for v in i.layout() {
                    let _ = write!(out, "{},", rank(v, ranks));
                }
                out.push(']');
                render(i, ranks, out);
            }
            out.push(')');
        }
        PlanNode::Aggregate {
            input,
            m,
            window,
            partitioning,
        } => {
            let _ = write!(
                out,
                "A(m{m};w{},{};p{partitioning:?};I",
                window.size.millis(),
                window.slide.millis()
            );
            render(input, ranks, out);
            out.push(')');
        }
        PlanNode::NextOccurrence { trigger, marker, w } => {
            let _ = write!(out, "N(w{};M:", w.millis());
            render_leaf(marker, out);
            out.push_str(";T");
            render(trigger, ranks, out);
            out.push(')');
        }
        PlanNode::Project { input, layout } => {
            out.push_str("P([");
            for v in layout {
                let _ = write!(out, "{},", rank(*v, ranks));
            }
            out.push_str("];I");
            render(input, ranks, out);
            out.push(')');
        }
    }
}

/// One interned subtree of the shared DAG with the patterns it serves —
/// the per-consumer attribution for the single physical `NodeStats`
/// entry the shared operators produce.
#[derive(Debug, Clone)]
pub struct SharedNode {
    /// Human-readable operator label (the node's `EXPLAIN` head line,
    /// rendered from the first consumer's plan).
    pub label: String,
    /// Pattern names consuming this subtree, in submission order.
    pub consumers: Vec<String>,
}

/// What the sharing pass merged across a batch of plans.
#[derive(Debug, Clone, Default)]
pub struct ShareReport {
    /// Patterns in the batch.
    pub patterns: usize,
    /// Logical plan nodes across all patterns before sharing.
    pub nodes_total: usize,
    /// Distinct subtrees actually lowered (plan nodes after sharing).
    pub nodes_lowered: usize,
    /// Scan nodes across all patterns before sharing.
    pub scans_total: usize,
    /// Distinct scans actually lowered.
    pub scans_lowered: usize,
    /// Events the lowered sources will replay in total — Σ over created
    /// source nodes of their stream length. Physical builds fill this
    /// in; it is the oracle's prediction for `RunReport::source_events`.
    pub expected_source_events: u64,
    /// Every distinct lowered subtree keyed by canonical key, with its
    /// consumer patterns. Subtrees nested under a shared parent are
    /// attributed to the patterns that interned the parent.
    pub shared: HashMap<String, SharedNode>,
}

impl ShareReport {
    /// Plan nodes the sharing pass eliminated.
    pub fn nodes_saved(&self) -> usize {
        self.nodes_total.saturating_sub(self.nodes_lowered)
    }

    /// Source scans the sharing pass eliminated.
    pub fn scans_saved(&self) -> usize {
        self.scans_total.saturating_sub(self.scans_lowered)
    }

    /// Consumer count of the subtree with canonical key `key` (0 when
    /// the key was never interned).
    pub fn consumers_of(&self, key: &str) -> usize {
        self.shared.get(key).map_or(0, |s| s.consumers.len())
    }

    /// The sharing summary block of the `--multi` EXPLAIN report.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "-- sharing: {} patterns | nodes {} → {} (saved {}) | scans {} → {} (saved {})",
            self.patterns,
            self.nodes_total,
            self.nodes_lowered,
            self.nodes_saved(),
            self.scans_total,
            self.scans_lowered,
            self.scans_saved(),
        );
        let mut multi: Vec<&SharedNode> = self
            .shared
            .values()
            .filter(|s| s.consumers.len() > 1)
            .collect();
        multi.sort_by(|a, b| {
            b.consumers
                .len()
                .cmp(&a.consumers.len())
                .then_with(|| a.label.cmp(&b.label))
                .then_with(|| a.consumers.cmp(&b.consumers))
        });
        if multi.is_empty() {
            out.push_str("-- shared subtrees: none\n");
        } else {
            let _ = writeln!(out, "-- shared subtrees ({}):", multi.len());
            for s in multi.iter().take(20) {
                let _ = writeln!(
                    out,
                    "   ×{} {}  [{}]",
                    s.consumers.len(),
                    s.label,
                    abbrev_list(&s.consumers, 6)
                );
            }
            if multi.len() > 20 {
                let _ = writeln!(out, "   … {} more", multi.len() - 20);
            }
        }
        out
    }
}

fn abbrev_list(items: &[String], max: usize) -> String {
    if items.len() <= max {
        items.join(", ")
    } else {
        format!("{}, … +{}", items[..max].join(", "), items.len() - max)
    }
}

/// The head line of a node's `EXPLAIN` rendering (its own label, without
/// children).
fn node_line(n: &PlanNode) -> String {
    n.explain().lines().next().unwrap_or_default().to_string()
}

/// Statically intern a batch of plans and report what a shared lowering
/// merges — the pure-analysis twin of the physical builder's cache, used
/// by `plan-explain --multi`. (`expected_source_events` stays 0 here: it
/// needs the actual stream lengths, which only a physical build sees.)
pub fn share_summary<'a>(
    plans: impl IntoIterator<Item = (&'a str, &'a LogicalPlan)>,
) -> ShareReport {
    let mut report = ShareReport::default();
    for (name, plan) in plans {
        report.patterns += 1;
        intern_subtree(&plan.root, name, &mut report);
    }
    report.nodes_lowered = report.shared.len();
    report.scans_lowered = report.shared.keys().filter(|k| k.starts_with("S(")).count();
    report
}

fn intern_subtree(n: &PlanNode, consumer: &str, report: &mut ShareReport) {
    report.nodes_total += 1;
    if matches!(n, PlanNode::Scan { .. }) {
        report.scans_total += 1;
    }
    let key = canonical_key(n);
    let entry = report.shared.entry(key).or_insert_with(|| SharedNode {
        label: node_line(n),
        consumers: Vec::new(),
    });
    if entry.consumers.last().map(String::as_str) != Some(consumer)
        && !entry.consumers.iter().any(|c| c == consumer)
    {
        entry.consumers.push(consumer.to_string());
    }
    match n {
        PlanNode::Scan { .. } => {}
        PlanNode::Join { left, right, .. } => {
            intern_subtree(left, consumer, report);
            intern_subtree(right, consumer, report);
        }
        PlanNode::Union { inputs } => {
            for i in inputs {
                intern_subtree(i, consumer, report);
            }
        }
        PlanNode::Aggregate { input, .. } => intern_subtree(input, consumer, report),
        PlanNode::NextOccurrence { trigger, .. } => intern_subtree(trigger, consumer, report),
        PlanNode::Project { input, .. } => intern_subtree(input, consumer, report),
    }
}

/// Render the shared DAG of a plan batch: each pattern's tree with a
/// `×k` consumer count per node, plans that are fully shared with an
/// earlier pattern collapsed to one line, and the sharing summary block
/// last. This is the `plan-explain --multi` / CI `PLAN_MULTI` artifact.
pub fn render_multi<'a>(
    plans: impl IntoIterator<Item = (&'a str, &'a LogicalPlan)> + Clone,
) -> String {
    let report = share_summary(plans.clone());
    let mut out = format!(
        "MULTI-PATTERN SHARED PLAN — {} patterns\n\n",
        report.patterns
    );
    let mut seen_roots: HashMap<String, String> = HashMap::new();
    for (name, plan) in plans {
        let root_key = canonical_key(&plan.root);
        if let Some(first) = seen_roots.get(&root_key) {
            let _ = writeln!(
                out,
                "== {name}  (plan identical to `{first}` — fully shared)\n"
            );
            continue;
        }
        seen_roots.insert(root_key, name.to_string());
        let _ = writeln!(out, "== {name} [{}]", plan.mapping);
        render_dag_node(&plan.root, &report, 0, &mut out);
        out.push('\n');
    }
    out.push_str(&report.render_summary());
    out
}

fn render_dag_node(n: &PlanNode, report: &ShareReport, depth: usize, out: &mut String) {
    let consumers = report.consumers_of(&canonical_key(n));
    let _ = writeln!(
        out,
        "{:indent$}{line}  ×{consumers}",
        "",
        indent = depth * 2,
        line = node_line(n),
    );
    match n {
        PlanNode::Scan { .. } => {}
        PlanNode::Join { left, right, .. } => {
            render_dag_node(left, report, depth + 1, out);
            render_dag_node(right, report, depth + 1, out);
        }
        PlanNode::Union { inputs } => {
            for i in inputs {
                render_dag_node(i, report, depth + 1, out);
            }
        }
        PlanNode::Aggregate { input, .. } => render_dag_node(input, report, depth + 1, out),
        PlanNode::NextOccurrence { trigger, .. } => {
            render_dag_node(trigger, report, depth + 1, out)
        }
        PlanNode::Project { input, .. } => render_dag_node(input, report, depth + 1, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{translate, MapperOptions};
    use asp::event::{Attr, EventType};
    use sea::pattern::{builders, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);
    const P: EventType = EventType(2);

    fn seq2(a: EventType, b: EventType, w: i64, preds: Vec<Predicate>) -> LogicalPlan {
        let p = builders::seq(&[(a, "A"), (b, "B")], WindowSpec::minutes(w), preds);
        translate(&p, &MapperOptions::o1()).expect("translate")
    }

    #[test]
    fn identical_plans_share_one_key() {
        let a = seq2(Q, V, 4, vec![]);
        let b = seq2(Q, V, 4, vec![]);
        assert_eq!(canonical_key(&a.root), canonical_key(&b.root));
    }

    #[test]
    fn differing_window_or_type_or_threshold_splits_keys() {
        let base = seq2(Q, V, 4, vec![]);
        let window = seq2(Q, V, 5, vec![]);
        let etype = seq2(Q, P, 4, vec![]);
        let pred = seq2(
            Q,
            V,
            4,
            vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 50.0)],
        );
        let key = canonical_key(&base.root);
        assert_ne!(key, canonical_key(&window.root));
        assert_ne!(key, canonical_key(&etype.root));
        assert_ne!(key, canonical_key(&pred.root));
        // Near-equal float thresholds stay distinct (bit-exact compare).
        let pred2 = seq2(
            Q,
            V,
            4,
            vec![Predicate::threshold(
                0,
                Attr::Value,
                CmpOp::Le,
                50.0 + 1e-12,
            )],
        );
        assert_ne!(canonical_key(&pred.root), canonical_key(&pred2.root));
    }

    #[test]
    fn var_rebase_shares_across_positions() {
        // The V scan binds position 1 in `qv` and position 0 in `vq`:
        // rank-rebasing makes the two V-scan subtrees share one key.
        let qv = seq2(Q, V, 4, vec![]);
        let vq = seq2(V, Q, 4, vec![]);
        let scan_key = |plan: &LogicalPlan, t: EventType| {
            plan.root
                .scans()
                .iter()
                .find_map(|s| match s {
                    PlanNode::Scan { etype, .. } if *etype == t => Some(canonical_key(s)),
                    _ => None,
                })
                .expect("scan present")
        };
        assert_eq!(scan_key(&qv, V), scan_key(&vq, V));
        assert_eq!(scan_key(&qv, Q), scan_key(&vq, Q));
        // But the joins differ (order pairs flip).
        assert_ne!(canonical_key(&qv.root), canonical_key(&vq.root));
    }

    #[test]
    fn foreign_var_predicates_do_not_split_scan_keys() {
        // A cross predicate is vacuous at the scan; the scan keys of a
        // plan with and without it must match.
        let plain = seq2(Q, V, 4, vec![]);
        let cross = seq2(Q, V, 4, vec![Predicate::same_id(0, 1)]);
        let scan_keys = |p: &LogicalPlan| -> Vec<String> {
            p.root.scans().iter().map(|s| canonical_key(s)).collect()
        };
        assert_eq!(scan_keys(&plain), scan_keys(&cross));
    }

    #[test]
    fn summary_counts_sharing() {
        let a = seq2(Q, V, 4, vec![]);
        let b = seq2(Q, V, 4, vec![]);
        let c = seq2(Q, V, 6, vec![]);
        let named = [("a", &a), ("b", &b), ("c", &c)];
        let report = share_summary(named.iter().map(|(n, p)| (*n, *p)));
        assert_eq!(report.patterns, 3);
        // Plans a and b are identical; c shares both scans (same leafs)
        // but keeps its own join.
        assert_eq!(report.scans_total, 6);
        assert_eq!(report.scans_lowered, 2);
        assert!(report.nodes_lowered < report.nodes_total, "{report:?}");
        let root_consumers = report.consumers_of(&canonical_key(&a.root));
        assert_eq!(root_consumers, 2, "a and b share the whole plan");
        let text = render_multi(named.iter().map(|(n, p)| (*n, *p)));
        assert!(text.contains("identical to `a`"), "{text}");
        assert!(text.contains("-- sharing: 3 patterns"), "{text}");
        assert!(text.contains("×2"), "{text}");
    }
}
