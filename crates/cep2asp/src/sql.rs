//! Render a mapped pattern as the SQL-like query text the paper uses to
//! present its translations (Listings 4, 6, and 8).
//!
//! The rendering is presentational — execution goes through the logical
//! plan — but it makes the pattern ↔ query correspondence inspectable and
//! is exercised by `repro table1`.

use std::fmt::Write;

use sea::pattern::{Pattern, PatternExpr};
use sea::predicate::Predicate;

/// Render the ASP query for a pattern in the paper's `SELECT … FROM …
/// WHERE … Window [Range W, s]` notation.
pub fn to_query_text(pattern: &Pattern) -> String {
    let mut from: Vec<String> = Vec::new();
    let mut conds: Vec<String> = Vec::new();
    let mut not_exists: Option<String> = None;
    collect(&pattern.expr, &mut from, &mut conds, &mut not_exists);
    for p in &pattern.predicates {
        conds.push(render_pred(p, pattern));
    }

    let mut out = String::from("SELECT *\n");
    let _ = writeln!(out, "FROM {}", from.join(", "));
    if !conds.is_empty() || not_exists.is_some() {
        let mut w = String::new();
        if !conds.is_empty() {
            w.push_str(&conds.join(" ∧ "));
        }
        if let Some(ne) = not_exists {
            if !w.is_empty() {
                w.push_str(" ∧ ");
            }
            w.push_str(&ne);
        }
        let _ = writeln!(out, "WHERE {w}");
    }
    let _ = write!(
        out,
        "Window [Range {}, {}]",
        pattern.window.size, pattern.window.slide
    );
    out
}

fn var_name(pattern: &Pattern, var: usize) -> String {
    pattern
        .expr
        .leaves()
        .iter()
        .find(|l| l.var == var)
        .map(|l| l.var_name.clone())
        .unwrap_or_else(|| format!("e{}", var + 1))
}

fn render_pred(p: &Predicate, pattern: &Pattern) -> String {
    use sea::predicate::Expr;
    let side = |e: &Expr| match e {
        Expr::Var(v, a) => format!("{}.{}", var_name(pattern, *v), a),
        Expr::Const(c) => format!("{c}"),
    };
    format!("{} {} {}", side(&p.lhs), p.op, side(&p.rhs))
}

fn collect(
    expr: &PatternExpr,
    from: &mut Vec<String>,
    conds: &mut Vec<String>,
    not_exists: &mut Option<String>,
) {
    match expr {
        PatternExpr::Leaf(l) => {
            from.push(format!("Stream {} {}", l.type_name, l.var_name));
            for f in &l.filters {
                conds.push(format!("{}{f}", l.var_name));
            }
        }
        PatternExpr::And(parts) => parts
            .iter()
            .for_each(|p| collect(p, from, conds, not_exists)),
        PatternExpr::Seq(parts) => {
            for p in parts {
                collect(p, from, conds, not_exists);
            }
            // Order conditions between consecutive parts' variables.
            for w in parts.windows(2) {
                if let (Some(a), Some(b)) = (last_leaf(&w[0]), first_leaf(&w[1])) {
                    conds.push(format!("{}.ts < {}.ts", a, b));
                }
            }
        }
        PatternExpr::Or(parts) => {
            // Render as a UNION of per-branch queries, abbreviated.
            let branches: Vec<String> = parts
                .iter()
                .flat_map(|p| p.leaves())
                .map(|l| format!("Stream {} {}", l.type_name, l.var_name))
                .collect();
            from.push(format!("({})", branches.join(" UNION ")));
        }
        PatternExpr::Iter { leaf, m, .. } => {
            for i in 0..*m {
                from.push(format!(
                    "Stream {} {}{}",
                    leaf.type_name,
                    leaf.var_name,
                    i + 1
                ));
            }
            for i in 0..m.saturating_sub(1) {
                conds.push(format!(
                    "{}{}.ts < {}{}.ts",
                    leaf.var_name,
                    i + 1,
                    leaf.var_name,
                    i + 2
                ));
            }
        }
        PatternExpr::NegSeq {
            first,
            absent,
            last,
        } => {
            from.push(format!("Stream {} {}", first.type_name, first.var_name));
            from.push(format!("Stream {} {}", last.type_name, last.var_name));
            conds.push(format!("{}.ts < {}.ts", first.var_name, last.var_name));
            let mut inner_conds: Vec<String> = absent
                .filters
                .iter()
                .map(|f| format!("{}{f}", absent.var_name))
                .collect();
            inner_conds.push(format!("{}.ts < {}.ts", first.var_name, absent.var_name));
            inner_conds.push(format!("{}.ts < {}.ts", absent.var_name, last.var_name));
            *not_exists = Some(format!(
                "NOT EXISTS (SELECT * FROM Stream {} {} WHERE {})",
                absent.type_name,
                absent.var_name,
                inner_conds.join(" ∧ ")
            ));
        }
    }
}

fn first_leaf(expr: &PatternExpr) -> Option<String> {
    expr.leaves().first().map(|l| l.var_name.clone())
}

fn last_leaf(expr: &PatternExpr) -> Option<String> {
    expr.leaves().last().map(|l| l.var_name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::{Attr, EventType};
    use sea::pattern::{builders, Leaf, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);
    const PM: EventType = EventType(2);

    #[test]
    fn and_query_matches_listing_4() {
        let p = builders::and(&[(Q, "T1"), (V, "T2")], WindowSpec::minutes(15), vec![]);
        let q = to_query_text(&p);
        assert!(q.starts_with("SELECT *"), "{q}");
        assert!(q.contains("FROM Stream T1 e1, Stream T2 e2"), "{q}");
        assert!(q.contains("Window [Range 15min, 1min]"), "{q}");
    }

    #[test]
    fn seq_query_matches_listing_8() {
        let p = builders::seq(
            &[(Q, "T1"), (V, "T2"), (PM, "T3")],
            WindowSpec::minutes(4),
            vec![],
        );
        let q = to_query_text(&p);
        assert!(
            q.contains("FROM Stream T1 e1, Stream T2 e2, Stream T3 e3"),
            "{q}"
        );
        assert!(q.contains("e1.ts < e2.ts"), "{q}");
        assert!(q.contains("e2.ts < e3.ts"), "{q}");
    }

    #[test]
    fn nseq_query_matches_listing_6() {
        let p = builders::nseq(
            (Q, "T1"),
            Leaf::new(V, "T2", "n").with_filter(Attr::Value, CmpOp::Gt, 30.0),
            (PM, "T3"),
            WindowSpec::minutes(15),
            vec![],
        );
        let q = to_query_text(&p);
        assert!(q.contains("NOT EXISTS (SELECT * FROM Stream T2 n"), "{q}");
        assert!(q.contains("e1.ts < n.ts"), "{q}");
        assert!(q.contains("n.ts < e2.ts"), "{q}");
        assert!(q.contains("n.value > 30"), "{q}");
    }

    #[test]
    fn predicates_render_with_variable_names() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(4),
            vec![Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value)],
        );
        let q = to_query_text(&p);
        assert!(q.contains("e1.value <= e2.value"), "{q}");
    }

    #[test]
    fn or_renders_union() {
        let p = builders::or(&[(Q, "T1"), (V, "T2")], WindowSpec::minutes(4));
        let q = to_query_text(&p);
        assert!(q.contains("UNION"), "{q}");
    }

    #[test]
    fn iter_renders_self_join() {
        let p = builders::iter(V, "V", 3, WindowSpec::minutes(15), vec![]);
        let q = to_query_text(&p);
        assert!(q.contains("Stream V v1, Stream V v2, Stream V v3"), "{q}");
        assert!(q.contains("v1.ts < v2.ts"), "{q}");
    }
}
