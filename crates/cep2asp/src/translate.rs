//! Pattern → logical-plan translation: the operator mapping of Section 4.
//!
//! | SEA operator | ASP plan (Table 1) |
//! |---|---|
//! | conjunction  | Cartesian product / window join (`⋈` with no order constraint) |
//! | sequence     | theta join on event-time order |
//! | disjunction  | set union (after schema alignment) |
//! | iteration    | chain of theta self-joins, or `γ_{count ≥ m}` (O2) |
//! | negated seq. | next-occurrence UDF + theta join + `σ_{ats ≥ e3.ts}` |
//!
//! The translator decomposes the pattern into one operator per SEA
//! operator — the decomposition that unlocks pipeline parallelism — and
//! applies the three optimizations the paper studies: O1 (interval joins),
//! O2 (aggregation for iterations), O3 (equi-join key partitioning).
//!
//! Disjunctions nested under sequences/conjunctions are handled by
//! *distribution*: `SEQ(A, OR(B, C)) ≡ OR(SEQ(A, B), SEQ(A, C))` — each
//! variant is planned separately and the results unioned, preserving the
//! per-branch layouts that positional predicates need.

use std::fmt;

use asp::time::Duration;

use sea::pattern::{Pattern, PatternExpr};
use sea::predicate::{Predicate, VarId};

use crate::plan::{JoinWindowing, LogicalPlan, Partitioning, PlanNode};

/// How sequences/iterations order their join tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum JoinOrder {
    /// Left-deep in textual order.
    #[default]
    Textual,
    /// Left-deep over the given permutation of the top-level parts — the
    /// manual frequency-based reordering of Section 4.2.2 (e.g. put the
    /// least frequent stream first so interval joins open fewer windows).
    Permutation(Vec<usize>),
}

/// Mapping configuration: which of the paper's optimizations to apply.
#[derive(Debug, Clone, Default)]
pub struct MapperOptions {
    /// O1: use interval joins instead of sliding-window joins.
    pub interval_join: bool,
    /// O2: map iterations to windowed count aggregations. Approximate for
    /// patterns with constraints *between* contributing events (the count
    /// ignores them, per Section 4.3.2).
    pub aggregate_iteration: bool,
    /// O3: partition joins by the sensor-id equi-key where the pattern
    /// provides one.
    pub partition_by_key: bool,
    /// Join-order hint for top-level sequences/conjunctions.
    pub join_order: JoinOrder,
}

impl MapperOptions {
    /// Plain mapping, no optimizations (the paper's "FASP").
    pub fn plain() -> Self {
        MapperOptions::default()
    }

    /// FASP-O1.
    pub fn o1() -> Self {
        MapperOptions {
            interval_join: true,
            ..Default::default()
        }
    }

    /// FASP-O2.
    pub fn o2() -> Self {
        MapperOptions {
            aggregate_iteration: true,
            ..Default::default()
        }
    }

    /// FASP-O3.
    pub fn o3() -> Self {
        MapperOptions {
            partition_by_key: true,
            ..Default::default()
        }
    }

    /// Combine with O3 (e.g. `MapperOptions::o1().and_o3()`).
    pub fn and_o3(mut self) -> Self {
        self.partition_by_key = true;
        self
    }
}

/// Errors the mapping can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// Kleene+ (`ITER m+`) requires the O2 aggregation mapping.
    KleenePlusNeedsAggregation,
    /// Too many disjunction variants after distribution.
    DisjunctionExplosion {
        /// How many variants distribution produced.
        variants: usize,
        /// The configured cap.
        limit: usize,
    },
    /// NSEQ with identical first/absent types can't be disambiguated after
    /// the union in front of the next-occurrence UDF.
    NseqTypeClash,
    /// A predicate could not be attached anywhere in the plan.
    UnattachablePredicate(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::KleenePlusNeedsAggregation => {
                write!(
                    f,
                    "ITER m+ (Kleene+) requires MapperOptions::aggregate_iteration (O2)"
                )
            }
            TranslateError::DisjunctionExplosion { variants, limit } => {
                write!(
                    f,
                    "disjunction distribution produced {variants} variants (limit {limit})"
                )
            }
            TranslateError::NseqTypeClash => {
                write!(
                    f,
                    "NSEQ trigger and negated leaf must have distinct event types"
                )
            }
            TranslateError::UnattachablePredicate(p) => {
                write!(f, "predicate `{p}` could not be attached to any join")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

const MAX_VARIANTS: usize = 64;

/// Translate a validated pattern into a logical ASP plan.
pub fn translate(pattern: &Pattern, opts: &MapperOptions) -> Result<LogicalPlan, TranslateError> {
    let variants = expand_disjunctions(&pattern.expr);
    if variants.len() > MAX_VARIANTS {
        return Err(TranslateError::DisjunctionExplosion {
            variants: variants.len(),
            limit: MAX_VARIANTS,
        });
    }
    let pairs = order_pairs(&pattern.expr);

    let mut roots = Vec::with_capacity(variants.len());
    for variant in &variants {
        // The equi-key closure must be computed per disjunction variant:
        // a chain `id(a)=id(b) ∧ id(b)=id(d)` connects a and d in the
        // full pattern, but in a variant that does not bind b both
        // predicates evaluate vacuously (sparse bindings), so nothing
        // constrains id(a) = id(d) — keying an (a, d) join on that chain
        // would hash legitimate cross-sensor matches to different
        // partitions and silently lose them.
        let bound = positions_of(variant);
        let mut ctx = Ctx {
            pattern,
            opts,
            pairs: &pairs,
            pending: pattern.cross_predicates(),
            key_class: equi_key_classes(pattern, &bound),
        };
        let root = build(variant, &mut ctx)?;
        // Every cross predicate must have found a join (or reference
        // positions of other variants, where it is vacuous).
        let layout = root.layout();
        for p in &ctx.pending {
            if p.vars().iter().all(|v| layout.contains(v)) {
                return Err(TranslateError::UnattachablePredicate(p.to_string()));
            }
        }
        roots.push(root);
    }
    let root = if roots.len() == 1 {
        roots.pop().expect("one variant")
    } else {
        PlanNode::Union { inputs: roots }
    };

    let mut mapping = describe(&pattern.expr, opts);
    if opts.partition_by_key && pattern.equi_keys().is_empty() {
        mapping.push_str(" (O3 requested but no equi-key predicate: global)");
    }
    let plan = LogicalPlan {
        root,
        positions: pattern.positions(),
        mapping,
        window: pattern.window,
    };
    // Post-condition (debug builds): the mapping must emit lint-clean plans.
    // Released binaries skip the walk; callers can still lint explicitly.
    debug_assert!(
        crate::lint::lint_plan(&plan).is_empty(),
        "translate produced a plan that fails its own lint:\n{}",
        crate::lint::lint_plan(&plan)
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Same contract for the schema/key pass: every emitted plan must carry
    // consistent per-edge schemas and co-partitioned keys.
    debug_assert!(
        crate::typecheck::typecheck(&plan).is_clean(),
        "translate produced a plan that fails its own typecheck:\n{}",
        crate::typecheck::typecheck(&plan)
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    Ok(plan)
}

struct Ctx<'a> {
    pattern: &'a Pattern,
    opts: &'a MapperOptions,
    pairs: &'a [(VarId, VarId)],
    /// Cross predicates not yet attached to a join.
    pending: Vec<Predicate>,
    /// Transitive closure of the equi-key predicates: `key_class[v]` is
    /// the representative of v's same-id equivalence class (or `v` itself
    /// if unconstrained).
    key_class: Vec<VarId>,
}

/// All positions bound in a subtree.
fn positions_of(expr: &PatternExpr) -> Vec<VarId> {
    match expr {
        PatternExpr::Leaf(l) => vec![l.var],
        PatternExpr::Seq(ps) | PatternExpr::And(ps) | PatternExpr::Or(ps) => {
            ps.iter().flat_map(positions_of).collect()
        }
        PatternExpr::Iter { leaf, m, .. } => (leaf.var..leaf.var + m).collect(),
        PatternExpr::NegSeq { first, last, .. } => vec![first.var, last.var],
    }
}

/// The full set of `a.ts < b.ts` constraints implied by the pattern
/// structure (checked pairwise so any join order works).
fn order_pairs(expr: &PatternExpr) -> Vec<(VarId, VarId)> {
    let mut out = Vec::new();
    collect_pairs(expr, &mut out);
    out
}

fn collect_pairs(expr: &PatternExpr, out: &mut Vec<(VarId, VarId)>) {
    match expr {
        PatternExpr::Leaf(_) => {}
        PatternExpr::Seq(parts) => {
            for p in parts {
                collect_pairs(p, out);
            }
            // All ordered part combinations, not only consecutive ones:
            // the transitive pairs let reordered joins derive tight
            // interval bounds and check order as early as possible.
            for i in 0..parts.len() {
                for j in i + 1..parts.len() {
                    for a in positions_of(&parts[i]) {
                        for b in positions_of(&parts[j]) {
                            out.push((a, b));
                        }
                    }
                }
            }
        }
        PatternExpr::And(parts) | PatternExpr::Or(parts) => {
            for p in parts {
                collect_pairs(p, out);
            }
        }
        PatternExpr::Iter { leaf, m, at_least } => {
            if !at_least {
                for i in 0..m.saturating_sub(1) {
                    out.push((leaf.var + i, leaf.var + i + 1));
                }
            }
        }
        PatternExpr::NegSeq { first, last, .. } => out.push((first.var, last.var)),
    }
}

/// Distribute nested disjunctions: return the cartesian product of branch
/// choices, each a disjunction-free expression.
fn expand_disjunctions(expr: &PatternExpr) -> Vec<PatternExpr> {
    match expr {
        PatternExpr::Leaf(_) | PatternExpr::Iter { .. } | PatternExpr::NegSeq { .. } => {
            vec![expr.clone()]
        }
        PatternExpr::Or(parts) => parts.iter().flat_map(expand_disjunctions).collect(),
        PatternExpr::Seq(parts) | PatternExpr::And(parts) => {
            let is_seq = matches!(expr, PatternExpr::Seq(_));
            let mut combos: Vec<Vec<PatternExpr>> = vec![Vec::new()];
            for p in parts {
                let choices = expand_disjunctions(p);
                let mut next = Vec::with_capacity(combos.len() * choices.len());
                for c in &combos {
                    for ch in &choices {
                        let mut c = c.clone();
                        c.push(ch.clone());
                        next.push(c);
                    }
                }
                combos = next;
            }
            combos
                .into_iter()
                .map(|c| {
                    if is_seq {
                        PatternExpr::Seq(c)
                    } else {
                        PatternExpr::And(c)
                    }
                })
                .collect()
        }
    }
}

/// Pick the join's time discretization. Interval-join bounds follow the
/// *direction* of the ordering constraints between the two sides: if every
/// constraint says left-before-right the window is `(0, W)`; all
/// right-before-left gives `(-W, 0)` (a reordered sequence join); mixed or
/// absent ordering (conjunctions) falls back to the symmetric `(-W, +W)`.
fn windowing(ctx: &Ctx<'_>, order: &[(VarId, VarId)], ll: &[VarId], rl: &[VarId]) -> JoinWindowing {
    let w = ctx.pattern.window.size;
    if !ctx.opts.interval_join {
        return JoinWindowing::Sliding {
            size: w,
            slide: ctx.pattern.window.slide,
        };
    }
    // The interval is anchored at the left tuple's working timestamp, the
    // minimum of its constituents. A right event provably *after* some
    // left constituent is after that anchor, so the lower bound tightens
    // to 0; a right event provably before *every* left constituent is
    // before the anchor, so the upper bound tightens to 0. Anything else
    // keeps the symmetric conjunction bounds.
    let right_after_some_left = !rl.is_empty()
        && rl
            .iter()
            .all(|r| order.iter().any(|(a, b)| b == r && ll.contains(a)));
    let right_before_every_left = !rl.is_empty()
        && rl
            .iter()
            .all(|r| ll.iter().all(|l| order.contains(&(*r, *l))));
    let lower = if right_after_some_left {
        Duration::ZERO
    } else {
        w.neg()
    };
    let upper = if right_before_every_left {
        Duration::ZERO
    } else {
        w
    };
    JoinWindowing::Interval { lower, upper }
}

/// Union-find closure of the pattern's `a.id = b.id` predicates,
/// restricted to the positions `bound` by the current disjunction
/// variant: a predicate referencing an unbound position is vacuous in
/// this variant (sparse evaluation) and must not contribute to the
/// closure.
fn equi_key_classes(pattern: &Pattern, bound: &[VarId]) -> Vec<VarId> {
    let n = pattern.positions();
    let mut parent: Vec<VarId> = (0..n).collect();
    fn find(parent: &mut Vec<VarId>, v: VarId) -> VarId {
        if parent[v] != v {
            let root = find(parent, parent[v]);
            parent[v] = root;
        }
        parent[v]
    }
    for p in pattern.equi_keys() {
        let vs = p.vars();
        if vs.len() == 2
            && vs[0] < n
            && vs[1] < n
            && bound.contains(&vs[0])
            && bound.contains(&vs[1])
        {
            let (a, b) = (find(&mut parent, vs[0]), find(&mut parent, vs[1]));
            parent[a.max(b)] = a.min(b);
        }
    }
    for v in 0..n {
        find(&mut parent, v);
    }
    parent
}

/// Does an equi-key connect the two layouts (O3 opportunity)? Uses the
/// transitive closure: `id0 = id1 ∧ id1 = id2` keys a direct (T0, T2)
/// join as well. Returns the connecting variable pair (left, right).
fn keyed_join(ctx: &Ctx<'_>, left: &[VarId], right: &[VarId]) -> Option<(VarId, VarId)> {
    if !ctx.opts.partition_by_key {
        return None;
    }
    // Layouts are disjoint, so equal classes for an (l, r) pair can only
    // come from an equi-key chain between them.
    let class = |v: VarId| ctx.key_class.get(v).copied().unwrap_or(v);
    for l in left {
        for r in right {
            if class(*l) == class(*r) {
                return Some((*l, *r));
            }
        }
    }
    None
}

fn make_scan(ctx: &Ctx<'_>, leaf: &sea::pattern::Leaf, var: VarId) -> PlanNode {
    // Filter pushdown: single-variable threshold predicates become leaf
    // filters on the scan (the classic ASP optimization the single CEP
    // operator forgoes).
    let mut leaf = leaf.clone();
    leaf.var = var;
    let mut residual = Vec::new();
    for p in ctx.pattern.single_var_predicates(var) {
        if let (sea::predicate::Expr::Var(_, attr), sea::predicate::Expr::Const(c)) = (p.lhs, p.rhs)
        {
            leaf.filters.push(sea::pattern::LocalFilter {
                attr,
                op: p.op,
                value: c,
            });
        } else if let (sea::predicate::Expr::Const(c), sea::predicate::Expr::Var(_, attr)) =
            (p.lhs, p.rhs)
        {
            let flipped = match p.op {
                sea::predicate::CmpOp::Lt => sea::predicate::CmpOp::Gt,
                sea::predicate::CmpOp::Le => sea::predicate::CmpOp::Ge,
                sea::predicate::CmpOp::Gt => sea::predicate::CmpOp::Lt,
                sea::predicate::CmpOp::Ge => sea::predicate::CmpOp::Le,
                other => other,
            };
            leaf.filters.push(sea::pattern::LocalFilter {
                attr,
                op: flipped,
                value: c,
            });
        } else {
            // Same-variable var-var predicate (e.g. e1.value < e1.ts):
            // evaluated at the scan against the single bound event.
            residual.push(p);
        }
    }
    PlanNode::Scan {
        etype: leaf.etype,
        type_name: leaf.type_name.clone(),
        var,
        leaf,
        predicates: residual,
    }
}

/// Join `left ⋈ right`, attaching newly-checkable order pairs and
/// newly-bound predicates.
fn make_join(ctx: &mut Ctx<'_>, left: PlanNode, right: PlanNode) -> PlanNode {
    let ll = left.layout();
    let rl = right.layout();
    let order: Vec<(VarId, VarId)> = ctx
        .pairs
        .iter()
        .filter(|(a, b)| (ll.contains(a) && rl.contains(b)) || (ll.contains(b) && rl.contains(a)))
        .copied()
        .collect();
    let mut merged: Vec<VarId> = ll.clone();
    merged.extend(&rl);
    let mut attached = Vec::new();
    ctx.pending.retain(|p| {
        let vs = p.vars();
        let fully = vs.iter().all(|v| merged.contains(v));
        let new = !vs.iter().all(|v| ll.contains(v)) && !vs.iter().all(|v| rl.contains(v));
        if fully && new {
            attached.push(*p);
            false
        } else {
            true
        }
    });
    let key_pair = keyed_join(ctx, &ll, &rl);
    PlanNode::Join {
        left: Box::new(left),
        right: Box::new(right),
        windowing: windowing(ctx, &order, &ll, &rl),
        partitioning: if key_pair.is_some() {
            Partitioning::ByKey
        } else {
            Partitioning::Global
        },
        order_pairs: order,
        predicates: attached,
        span_ms: ctx.pattern.window.size.millis(),
        ats_check: None,
        key_pair,
    }
}

fn build(expr: &PatternExpr, ctx: &mut Ctx<'_>) -> Result<PlanNode, TranslateError> {
    match expr {
        PatternExpr::Leaf(l) => Ok(make_scan(ctx, l, l.var)),

        PatternExpr::Seq(parts) | PatternExpr::And(parts) => {
            let order: Vec<usize> = match &ctx.opts.join_order {
                JoinOrder::Textual => (0..parts.len()).collect(),
                JoinOrder::Permutation(perm) if perm.len() == parts.len() => perm.clone(),
                JoinOrder::Permutation(_) => (0..parts.len()).collect(),
            };
            let mut iter = order.into_iter();
            let first = iter.next().expect("arity ≥ 2 validated");
            let mut acc = build(&parts[first], ctx)?;
            for idx in iter {
                let rhs = build(&parts[idx], ctx)?;
                acc = make_join(ctx, acc, rhs);
            }
            Ok(acc)
        }

        // Disjunctions were distributed away before build(); a bare OR at
        // the root arrives here only via expand() producing variants, so
        // this arm is unreachable in practice — but keep it total.
        PatternExpr::Or(parts) => {
            let mut inputs = Vec::with_capacity(parts.len());
            for p in parts {
                inputs.push(build(p, ctx)?);
            }
            Ok(PlanNode::Union { inputs })
        }

        PatternExpr::Iter { leaf, m, at_least } => {
            if *at_least && !ctx.opts.aggregate_iteration {
                return Err(TranslateError::KleenePlusNeedsAggregation);
            }
            if ctx.opts.aggregate_iteration {
                // O2: γ_{count ≥ m}. Constraints between contributing
                // events are dropped (approximate, Section 4.3.2) — remove
                // them from pending so they don't trip the attachment check.
                let iter_vars: Vec<VarId> = (leaf.var..leaf.var + m).collect();
                // Equi-keys *between iteration positions* are what the
                // per-key aggregation makes implicit, so only those may
                // select ByKey; an equi-key elsewhere in the pattern
                // (e.g. between two non-iterated positions) must neither
                // trigger per-key counting — that would change the count
                // semantics — nor be dropped from `pending`, or its
                // constraint would be silently lost at the outer joins.
                let intra_iter_key = ctx
                    .pattern
                    .equi_keys()
                    .iter()
                    .any(|p| p.vars().iter().all(|v| iter_vars.contains(v)));
                ctx.pending
                    .retain(|p| !p.vars().iter().all(|v| iter_vars.contains(v)));
                let scan = make_scan(ctx, leaf, leaf.var);
                let partitioning = if ctx.opts.partition_by_key && intra_iter_key {
                    Partitioning::ByKey
                } else {
                    Partitioning::Global
                };
                return Ok(PlanNode::Aggregate {
                    input: Box::new(scan),
                    m: *m as u64,
                    window: ctx.pattern.window,
                    partitioning,
                });
            }
            // Join chain: m scans of the same type, theta self-joins.
            let mut acc = make_scan(ctx, leaf, leaf.var);
            for i in 1..*m {
                let rhs = make_scan(ctx, leaf, leaf.var + i);
                acc = make_join(ctx, acc, rhs);
            }
            Ok(acc)
        }

        PatternExpr::NegSeq {
            first,
            absent,
            last,
        } => {
            if first.etype == absent.etype {
                return Err(TranslateError::NseqTypeClash);
            }
            let trigger = make_scan(ctx, first, first.var);
            let next_occ = PlanNode::NextOccurrence {
                trigger: Box::new(trigger),
                marker: absent.clone(),
                w: ctx.pattern.window.size,
            };
            let last_scan = make_scan(ctx, last, last.var);
            let mut join = make_join(ctx, next_occ, last_scan);
            if let PlanNode::Join { ats_check, .. } = &mut join {
                *ats_check = Some(last.var);
            }
            Ok(join)
        }
    }
}

fn describe(expr: &PatternExpr, opts: &MapperOptions) -> String {
    let mut parts = Vec::new();
    let base = match expr {
        PatternExpr::Leaf(_) => "scan",
        PatternExpr::Seq(_) => "SEQ → ⋈θ (order join)",
        PatternExpr::And(_) => "AND → × (window cross join)",
        PatternExpr::Or(_) => "OR → ∪ (union)",
        PatternExpr::Iter {
            at_least: false, ..
        } => "ITER → ⋈θ self-join chain",
        PatternExpr::Iter { at_least: true, .. } => "ITER+ → γ_count (Kleene+)",
        PatternExpr::NegSeq { .. } => "NSEQ → UDF(∪) ⋈θ σ_ats",
    };
    parts.push(base.to_string());
    if opts.interval_join {
        parts.push("O1 interval join".into());
    }
    if opts.aggregate_iteration && matches!(expr, PatternExpr::Iter { .. }) {
        parts.push("O2 aggregation (approximate)".into());
    }
    if opts.partition_by_key {
        parts.push("O3 equi-key partitioning".into());
    }
    parts.join(" + ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::{Attr, EventType};
    use sea::pattern::{builders, Leaf, WindowSpec};
    use sea::predicate::CmpOp;

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);
    const PM: EventType = EventType(2);

    #[test]
    fn seq_maps_to_left_deep_join_chain() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(15),
            vec![],
        );
        let plan = translate(&p, &MapperOptions::plain()).unwrap();
        assert_eq!(plan.root.join_count(), 2, "n-1 joins for SEQ(n)");
        assert_eq!(plan.root.layout(), vec![0, 1, 2]);
        let text = plan.explain();
        assert!(text.contains("SLIDING(15min, 1min)"), "{text}");
    }

    #[test]
    fn and_join_has_no_order_constraint() {
        let p = builders::and(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(15), vec![]);
        let plan = translate(&p, &MapperOptions::plain()).unwrap();
        match &plan.root {
            PlanNode::Join { order_pairs, .. } => assert!(order_pairs.is_empty()),
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn o1_switches_to_interval_join_with_correct_bounds() {
        let w = Duration::from_minutes(15);
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(15), vec![]);
        let plan = translate(&p, &MapperOptions::o1()).unwrap();
        match &plan.root {
            PlanNode::Join { windowing, .. } => assert_eq!(
                *windowing,
                JoinWindowing::Interval {
                    lower: Duration::ZERO,
                    upper: w
                }
            ),
            _ => panic!(),
        }
        let p = builders::and(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(15), vec![]);
        let plan = translate(&p, &MapperOptions::o1()).unwrap();
        match &plan.root {
            PlanNode::Join { windowing, .. } => assert_eq!(
                *windowing,
                JoinWindowing::Interval {
                    lower: w.neg(),
                    upper: w
                }
            ),
            _ => panic!(),
        }
    }

    #[test]
    fn o3_partitions_only_with_equi_key() {
        let preds = vec![Predicate::same_id(0, 1)];
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(15), preds);
        let plan = translate(&p, &MapperOptions::o3()).unwrap();
        match &plan.root {
            PlanNode::Join { partitioning, .. } => assert_eq!(*partitioning, Partitioning::ByKey),
            _ => panic!(),
        }
        // Without the predicate O3 degrades to global.
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(15), vec![]);
        let plan = translate(&p, &MapperOptions::o3()).unwrap();
        match &plan.root {
            PlanNode::Join { partitioning, .. } => assert_eq!(*partitioning, Partitioning::Global),
            _ => panic!(),
        }
        assert!(plan.mapping.contains("no equi-key"), "{}", plan.mapping);
    }

    #[test]
    fn iter_maps_to_self_joins_or_aggregate() {
        let p = builders::iter(V, "V", 4, WindowSpec::minutes(15), vec![]);
        let plan = translate(&p, &MapperOptions::plain()).unwrap();
        assert_eq!(plan.root.join_count(), 3);
        let plan = translate(&p, &MapperOptions::o2()).unwrap();
        match &plan.root {
            PlanNode::Aggregate { m, .. } => assert_eq!(*m, 4),
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn kleene_plus_requires_o2() {
        let p = builders::kleene_plus(V, "V", 3, WindowSpec::minutes(15));
        assert_eq!(
            translate(&p, &MapperOptions::plain()).unwrap_err(),
            TranslateError::KleenePlusNeedsAggregation
        );
        assert!(translate(&p, &MapperOptions::o2()).is_ok());
    }

    #[test]
    fn nseq_maps_to_next_occurrence_and_ats_join() {
        let p = builders::nseq(
            (Q, "Q"),
            Leaf::new(V, "V", "n"),
            (PM, "PM"),
            WindowSpec::minutes(15),
            vec![],
        );
        let plan = translate(&p, &MapperOptions::plain()).unwrap();
        match &plan.root {
            PlanNode::Join {
                left,
                ats_check,
                order_pairs,
                ..
            } => {
                assert_eq!(*ats_check, Some(1));
                assert_eq!(order_pairs, &vec![(0, 1)]);
                assert!(matches!(**left, PlanNode::NextOccurrence { .. }));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn nseq_type_clash_is_rejected() {
        let p = builders::nseq(
            (Q, "Q"),
            Leaf::new(Q, "Q", "n"),
            (PM, "PM"),
            WindowSpec::minutes(15),
            vec![],
        );
        assert_eq!(
            translate(&p, &MapperOptions::plain()).unwrap_err(),
            TranslateError::NseqTypeClash
        );
    }

    #[test]
    fn or_maps_to_union() {
        let p = builders::or(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(15));
        let plan = translate(&p, &MapperOptions::plain()).unwrap();
        match &plan.root {
            PlanNode::Union { inputs } => assert_eq!(inputs.len(), 2),
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn nested_or_distributes_over_seq() {
        use sea::pattern::Pattern;
        let expr = PatternExpr::Seq(vec![
            PatternExpr::Leaf(Leaf::new(Q, "Q", "a")),
            PatternExpr::Or(vec![
                PatternExpr::Leaf(Leaf::new(V, "V", "b")),
                PatternExpr::Leaf(Leaf::new(PM, "PM", "c")),
            ]),
        ]);
        let p = Pattern::new("m", expr, WindowSpec::minutes(15), vec![]).unwrap();
        let plan = translate(&p, &MapperOptions::plain()).unwrap();
        match &plan.root {
            PlanNode::Union { inputs } => {
                assert_eq!(inputs.len(), 2, "SEQ(Q, OR(V, PM)) → 2 variants");
                assert!(inputs.iter().all(|i| i.join_count() == 1));
            }
            other => panic!("expected union of variants, got {other:?}"),
        }
    }

    #[test]
    fn equi_key_closure_is_computed_per_variant() {
        use sea::pattern::Pattern;
        const W: EventType = EventType(3);
        // SEQ(Q, OR(V, PM), W) with id(e1)=id(e2) ∧ id(e2)=id(e4): the
        // chain connects positions 0 and 3 only through position 1, which
        // the PM variant does not bind — there both predicates evaluate
        // vacuously, so its joins must stay global.
        let expr = PatternExpr::Seq(vec![
            PatternExpr::Leaf(Leaf::new(Q, "Q", "a")),
            PatternExpr::Or(vec![
                PatternExpr::Leaf(Leaf::new(V, "V", "b")),
                PatternExpr::Leaf(Leaf::new(PM, "PM", "c")),
            ]),
            PatternExpr::Leaf(Leaf::new(W, "W", "d")),
        ]);
        let p = Pattern::new(
            "chain",
            expr,
            WindowSpec::minutes(15),
            vec![Predicate::same_id(0, 1), Predicate::same_id(1, 3)],
        )
        .unwrap();
        let plan = translate(&p, &MapperOptions::o3()).unwrap();
        fn partitionings(n: &PlanNode, out: &mut Vec<Partitioning>) {
            if let PlanNode::Join {
                left,
                right,
                partitioning,
                ..
            } = n
            {
                partitionings(left, out);
                partitionings(right, out);
                out.push(*partitioning);
            }
        }
        match &plan.root {
            PlanNode::Union { inputs } => {
                assert_eq!(inputs.len(), 2);
                // Variant binding V (positions 0, 1, 3): the chain is
                // fully bound, both joins are keyed.
                let mut v = Vec::new();
                partitionings(&inputs[0], &mut v);
                assert_eq!(v, vec![Partitioning::ByKey; 2], "{}", plan.explain());
                // Variant binding PM (positions 0, 2, 3): nothing keyed.
                let mut g = Vec::new();
                partitionings(&inputs[1], &mut g);
                assert_eq!(g, vec![Partitioning::Global; 2], "{}", plan.explain());
            }
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn o2_keeps_equi_keys_outside_the_iteration() {
        use crate::exec::{run_pattern_simple, split_by_type};
        use asp::event::Event;
        use asp::time::Timestamp;
        use sea::pattern::Pattern;
        // SEQ(Q, ITER(V, 2), PM) with id(e1) = id(e4): the equi-key does
        // not touch the iteration, so O2 must not switch the count to
        // per-key, and the constraint must survive to the outer join.
        let expr = PatternExpr::Seq(vec![
            PatternExpr::Leaf(Leaf::new(Q, "Q", "a")),
            PatternExpr::Iter {
                leaf: Leaf::new(V, "V", "b"),
                m: 2,
                at_least: false,
            },
            PatternExpr::Leaf(Leaf::new(PM, "PM", "c")),
        ]);
        let p = Pattern::new(
            "outer-key",
            expr,
            WindowSpec::minutes(15),
            vec![Predicate::same_id(0, 3)],
        )
        .unwrap();
        fn agg_partitioning(n: &PlanNode) -> Option<Partitioning> {
            match n {
                PlanNode::Aggregate { partitioning, .. } => Some(*partitioning),
                PlanNode::Join { left, right, .. } => {
                    agg_partitioning(left).or_else(|| agg_partitioning(right))
                }
                _ => None,
            }
        }
        for opts in [MapperOptions::o2(), MapperOptions::o2().and_o3()] {
            let plan = translate(&p, &opts).unwrap();
            assert_eq!(
                agg_partitioning(&plan.root),
                Some(Partitioning::Global),
                "no intra-iteration equi-key → global count\n{}",
                plan.explain()
            );
            match &plan.root {
                PlanNode::Join {
                    predicates,
                    partitioning,
                    ..
                } => {
                    // Under O3 the constraint is enforced by the keyed
                    // exchange; otherwise it must remain a join predicate.
                    if *partitioning == Partitioning::Global {
                        assert!(
                            predicates.iter().any(|pr| pr.is_equi_key()),
                            "id(e1)=id(e4) dropped from the outer join\n{}",
                            plan.explain()
                        );
                    }
                }
                other => panic!("expected outer join, got {other:?}"),
            }
        }
        // Semantics: PM with a different sensor id than Q must not match.
        let events = vec![
            Event::new(Q, 7, Timestamp::from_minutes(0), 1.0),
            Event::new(V, 1, Timestamp::from_minutes(1), 2.0),
            Event::new(V, 2, Timestamp::from_minutes(2), 3.0),
            Event::new(PM, 7, Timestamp::from_minutes(3), 4.0),
            Event::new(PM, 9, Timestamp::from_minutes(4), 5.0),
        ];
        let run = run_pattern_simple(&p, &MapperOptions::o2(), &split_by_type(&events)).unwrap();
        assert_eq!(
            run.dedup_matches().len(),
            1,
            "only the id-7 PM may complete the match"
        );
    }

    #[test]
    fn filter_pushdown_reaches_the_scan() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(15),
            vec![Predicate::threshold(1, Attr::Value, CmpOp::Le, 10.0)],
        );
        let plan = translate(&p, &MapperOptions::plain()).unwrap();
        let text = plan.explain();
        assert!(text.contains("Scan V [e2] σ(.value <= 10"), "{text}");
    }

    #[test]
    fn cross_predicates_attach_at_first_covering_join() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(15),
            vec![Predicate::cross(0, Attr::Value, CmpOp::Le, 2, Attr::Value)],
        );
        let plan = translate(&p, &MapperOptions::plain()).unwrap();
        // The e1–e3 predicate binds at the outer join.
        match &plan.root {
            PlanNode::Join { predicates, .. } => assert_eq!(predicates.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn join_order_permutation_is_applied() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(15),
            vec![],
        );
        let opts = MapperOptions {
            join_order: JoinOrder::Permutation(vec![2, 0, 1]),
            ..Default::default()
        };
        let plan = translate(&p, &opts).unwrap();
        // Leftmost scan is PM (position 2); ordering still enforced via
        // pairwise ts predicates.
        assert_eq!(plan.root.layout(), vec![2, 0, 1]);
        let text = plan.explain();
        assert!(
            text.contains("e1.ts < e2.ts") || text.contains("e2.ts < e3.ts"),
            "{text}"
        );
    }
}
