//! Static schema inference & partition-safety analysis (`S`-codes).
//!
//! The third static-analysis layer, alongside the graph validator
//! (`G`-codes, `asp::validate`), the plan linter (`P`-codes,
//! [`crate::lint`]), and the cost analyzer (`A`-codes,
//! [`mod@crate::analyze`]):
//!
//! 1. **Per-edge schema inference** — propagate typed tuple schemas
//!    (constituent event types + `VarId` layout, plus the `ats`/`agg`
//!    annotation channels) from the source declarations through every
//!    [`PlanNode`], rejecting layout/arity mismatches and predicates over
//!    undeclared attributes at translate time.
//! 2. **Key-provenance analysis** — a small dataflow lattice
//!    ([`KeyProvenance`]) tracking which attribute is the partition key on
//!    each edge, whether each operator preserves, destroys, or rewrites
//!    it, and whether every `ByKey` join is actually co-partitioned on its
//!    `key_pair` (the equi-key closure check, S005).
//! 3. **Partition-safety verdicts** — classify each operator as
//!    shardable-by-key / global-only / stateless ([`ShardSafety`]),
//!    exported in EXPLAIN output and a machine-readable JSON artifact for
//!    the future sharded executor.
//!
//! The pass is wired in three places: a `translate()` debug-mode
//! post-condition (like `lint_plan`), a pre-run check in
//! [`crate::exec::run_pattern`], and — with the `schema-conformance`
//! feature (or [`crate::physical::PhysicalConfig::schema_conformance`]) —
//! a runtime conformance mode that asserts every tuple crossing an edge
//! matches the inferred schema and key, so the analysis is validated
//! against reality instead of merely asserted.
//!
//! | code | rejected plan defect |
//! |------|----------------------|
//! | S001 | predicate reads an attribute the bound source never declares |
//! | S002 | scan node and its leaf disagree on the event type |
//! | S003 | join sides bind overlapping pattern variables |
//! | S004 | projection layout is not a permutation of its input columns |
//! | S005 | `ByKey` join whose key pair is not in one equi-key class |
//! | S006 | `ByKey` aggregate over an input that is not sensor-id keyed |
//! | S007 | `ats` check with no `ats`-carrying input (statically dead) |
//! | S008 | aggregate over a composite (multi-event) input |

use std::collections::HashMap;
use std::fmt;

use asp::event::{Attr, EventType};

use sea::predicate::{Expr, Predicate, VarId};
use sea::schema::SchemaCatalog;

use crate::diag::{Diag, DiagCode};
use crate::plan::{LogicalPlan, Partitioning, PlanNode};

/// Stable identifier of a schema/partition-safety defect found by
/// [`typecheck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeCode {
    /// S001: a predicate reads an attribute the bound source's declared
    /// schema does not provide.
    UnknownAttribute,
    /// S002: a scan's `etype` and its leaf's `etype` disagree — the same
    /// variable would bind conflicting types.
    InconsistentVarType,
    /// S003: a join's sides bind the same pattern variable, so the output
    /// layout would carry a duplicate column.
    DuplicateColumn,
    /// S004: a projection's layout is not a permutation of its input's
    /// columns (or the input is a mixed union with no single layout).
    ProjectionLayoutMismatch,
    /// S005: a `ByKey` join whose `key_pair` sides are not provably equal
    /// under the plan's equi-key predicate closure — the hash partitioner
    /// would separate matching pairs and silently lose matches.
    JoinKeyNotCoPartitioned,
    /// S006: a `ByKey` aggregate over an input whose partition key is not
    /// a sensor id — the per-key counts would be grouped arbitrarily.
    AggregateKeyProvenance,
    /// S007: a join checks the `ats` annotation but no input can carry
    /// one — the join statically emits nothing.
    AtsWithoutProvider,
    /// S008: an aggregate over a composite (multi-event) input; the count
    /// mapping is defined over single scanned events.
    AggregateOverComposite,
}

impl TypeCode {
    /// Every code, in `Sxxx` order — the doc-sync test checks DESIGN.md's
    /// code table against this list, so keep it exhaustive.
    pub const ALL: &'static [TypeCode] = &[
        TypeCode::UnknownAttribute,
        TypeCode::InconsistentVarType,
        TypeCode::DuplicateColumn,
        TypeCode::ProjectionLayoutMismatch,
        TypeCode::JoinKeyNotCoPartitioned,
        TypeCode::AggregateKeyProvenance,
        TypeCode::AtsWithoutProvider,
        TypeCode::AggregateOverComposite,
    ];

    /// The stable `Sxxx` string for this code.
    pub fn as_str(&self) -> &'static str {
        match self {
            TypeCode::UnknownAttribute => "S001",
            TypeCode::InconsistentVarType => "S002",
            TypeCode::DuplicateColumn => "S003",
            TypeCode::ProjectionLayoutMismatch => "S004",
            TypeCode::JoinKeyNotCoPartitioned => "S005",
            TypeCode::AggregateKeyProvenance => "S006",
            TypeCode::AtsWithoutProvider => "S007",
            TypeCode::AggregateOverComposite => "S008",
        }
    }
}

impl fmt::Display for TypeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl DiagCode for TypeCode {
    fn as_str(&self) -> &'static str {
        TypeCode::as_str(self)
    }
}

/// One schema/partition-safety defect. All typecheck findings are errors;
/// the shared [`Diag`] carrier keeps rendering uniform with G/P/A.
pub type TypeDiagnostic = Diag<TypeCode>;

/// One column of a tuple schema: the pattern position it binds and the
/// event type of the constituent stored there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Pattern variable bound at this tuple position.
    pub var: VarId,
    /// Event type of the constituent.
    pub etype: EventType,
    /// Human-readable type name (diagnostics, EXPLAIN).
    pub type_name: String,
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}:{}", self.var + 1, self.type_name)
    }
}

/// The schema of one tuple shape an edge can carry: its columns in tuple
/// order plus whether the `ats`/`agg` annotation channels are populated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSchema {
    /// Constituent columns, in physical tuple order.
    pub columns: Vec<Column>,
    /// Tuples of this shape carry the NSEQ `ats` annotation.
    pub ats: bool,
    /// Tuples of this shape carry the aggregation result (`agg`).
    pub agg: bool,
}

impl RowSchema {
    /// The `VarId` layout of this row, in tuple order.
    pub fn layout(&self) -> Vec<VarId> {
        self.columns.iter().map(|c| c.var).collect()
    }
}

impl fmt::Display for RowSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self.columns.iter().map(Column::to_string).collect();
        write!(f, "({})", cols.join(", "))?;
        if self.ats {
            write!(f, "+ats")?;
        }
        if self.agg {
            write!(f, "+agg")?;
        }
        Ok(())
    }
}

/// Where an edge's partition key comes from — the key-provenance lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyProvenance {
    /// Every tuple's key equals the sensor id of the constituent bound at
    /// this pattern position (scans, `ByKey` joins/aggregates).
    SensorId(VarId),
    /// Every tuple carries the single uniform key `0` (global operators).
    Uniform,
    /// No single provenance holds (e.g. a union of differently-keyed
    /// branches); downstream keyed operators must re-key.
    Mixed,
}

impl fmt::Display for KeyProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyProvenance::SensorId(v) => write!(f, "id(e{})", v + 1),
            KeyProvenance::Uniform => write!(f, "uniform"),
            KeyProvenance::Mixed => write!(f, "mixed"),
        }
    }
}

/// The partition-safety verdict for one operator — whether a sharded
/// runtime may split its state by key, must run it globally, or can place
/// it anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSafety {
    /// State is partitioned by the sensor-id key; instances are
    /// independent and the operator parallelizes (O3).
    ShardableByKey,
    /// State spans keys (uniform-key joins, global aggregates, the NSEQ
    /// UDF); exactly one instance must see every tuple.
    GlobalOnly,
    /// No state at all; the operator can run anywhere at any parallelism.
    Stateless,
}

impl fmt::Display for ShardSafety {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardSafety::ShardableByKey => write!(f, "shardable-by-key"),
            ShardSafety::GlobalOnly => write!(f, "global-only"),
            ShardSafety::Stateless => write!(f, "stateless"),
        }
    }
}

/// The inferred schema of one dataflow edge: the tuple shapes it can carry
/// (one per union variant) and the partition-key provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSchema {
    /// Possible tuple shapes; a single-variant edge is the common case,
    /// union outputs carry one entry per branch shape.
    pub variants: Vec<RowSchema>,
    /// Where the partition key on this edge comes from.
    pub key: KeyProvenance,
}

impl fmt::Display for EdgeSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vs: Vec<String> = self.variants.iter().map(RowSchema::to_string).collect();
        write!(f, "{}  key={}", vs.join(" | "), self.key)
    }
}

/// One plan node annotated with its inferred output-edge schema and its
/// partition-safety verdict. The tree mirrors the plan (and
/// [`crate::analyze::AnalyzedNode`]) child order exactly, so the EXPLAIN
/// renderer can walk both in lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedNode {
    /// Node label, matching the cost analyzer's labels.
    pub label: String,
    /// Inferred schema of the node's output edge.
    pub schema: EdgeSchema,
    /// The node's partition-safety verdict.
    pub safety: ShardSafety,
    /// Typed children, in plan order.
    pub children: Vec<TypedNode>,
}

/// The result of [`typecheck`]: the typed plan tree plus every defect
/// found. An empty diagnostic list means the plan is schema- and
/// key-sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypecheckResult {
    /// Typed plan tree (inference proceeds even past defects, so the tree
    /// is always complete).
    pub root: TypedNode,
    /// Every defect found, in walk order. All are errors.
    pub diagnostics: Vec<TypeDiagnostic>,
}

impl TypecheckResult {
    /// Did the plan pass with zero defects?
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render the typed tree plus diagnostics as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_node(&self.root, 0, &mut out);
        for d in &self.diagnostics {
            out.push_str(&format!("!! {d}\n"));
        }
        out
    }

    /// Serialize the verdicts as a machine-readable JSON document (for
    /// the CI artifact and the future sharded placer). Hand-rolled — this
    /// crate deliberately carries no serialization dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"clean\":");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"node\":{},\"message\":{}}}",
                json_str(d.code.as_str()),
                json_str(&d.severity.to_string()),
                json_str(&d.node),
                json_str(&d.message)
            ));
        }
        out.push_str("],\"root\":");
        json_node(&self.root, &mut out);
        out.push('}');
        out
    }
}

fn render_node(n: &TypedNode, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    let _ = writeln!(out, "{pad}{}  :: {}  [{}]", n.label, n.schema, n.safety);
    for c in &n.children {
        render_node(c, depth + 1, out);
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_node(n: &TypedNode, out: &mut String) {
    out.push_str(&format!("{{\"label\":{},\"key\":", json_str(&n.label)));
    match n.schema.key {
        KeyProvenance::SensorId(v) => {
            out.push_str(&format!("{{\"kind\":\"sensor-id\",\"var\":{v}}}"));
        }
        KeyProvenance::Uniform => out.push_str("{\"kind\":\"uniform\"}"),
        KeyProvenance::Mixed => out.push_str("{\"kind\":\"mixed\"}"),
    }
    out.push_str(&format!(",\"safety\":{},\"variants\":[", {
        json_str(&n.safety.to_string())
    }));
    for (i, v) in n.schema.variants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"columns\":[");
        for (j, c) in v.columns.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"var\":{},\"etype\":{},\"type\":{}}}",
                c.var,
                c.etype.0,
                json_str(&c.type_name)
            ));
        }
        out.push_str(&format!(
            "],\"ats\":{},\"agg\":{}}}",
            if v.ats { "true" } else { "false" },
            if v.agg { "true" } else { "false" }
        ));
    }
    out.push_str("],\"children\":[");
    for (i, c) in n.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_node(c, out);
    }
    out.push_str("]}");
}

/// Typecheck a plan against a fully permissive schema catalog (every
/// source exposes every attribute): structural/layout/key checks only.
pub fn typecheck(plan: &LogicalPlan) -> TypecheckResult {
    typecheck_with(plan, &SchemaCatalog::new())
}

/// Typecheck a plan against declared source schemas: everything
/// [`typecheck`] checks, plus S001 for predicates reading attributes the
/// bound source never declares.
pub fn typecheck_with(plan: &LogicalPlan, catalog: &SchemaCatalog) -> TypecheckResult {
    let mut diagnostics = Vec::new();
    let mut classes = UnionFind::default();
    collect_equi_classes(&plan.root, &mut classes);
    let mut cx = Ctx {
        catalog,
        classes,
        diags: &mut diagnostics,
    };
    let root = infer(&plan.root, &mut cx);
    TypecheckResult { root, diagnostics }
}

/// Union-find over pattern variables, built from the plan's equi-key
/// predicates (`eA.id = eB.id`); two variables in one class are provably
/// co-keyed wherever both are bound.
#[derive(Debug, Default)]
struct UnionFind {
    parent: HashMap<VarId, VarId>,
}

impl UnionFind {
    fn find(&mut self, v: VarId) -> VarId {
        let p = *self.parent.entry(v).or_insert(v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    fn union(&mut self, a: VarId, b: VarId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn same(&mut self, a: VarId, b: VarId) -> bool {
        self.find(a) == self.find(b)
    }
}

fn collect_equi_classes(node: &PlanNode, uf: &mut UnionFind) {
    if let PlanNode::Join { predicates, .. } = node {
        for p in predicates {
            if p.is_equi_key() {
                if let (Expr::Var(a, _), Expr::Var(b, _)) = (p.lhs, p.rhs) {
                    uf.union(a, b);
                }
            }
        }
    }
    match node {
        PlanNode::Scan { .. } => {}
        PlanNode::Join { left, right, .. } => {
            collect_equi_classes(left, uf);
            collect_equi_classes(right, uf);
        }
        PlanNode::Union { inputs } => inputs.iter().for_each(|i| collect_equi_classes(i, uf)),
        PlanNode::Aggregate { input, .. } => collect_equi_classes(input, uf),
        PlanNode::NextOccurrence { trigger, .. } => collect_equi_classes(trigger, uf),
        PlanNode::Project { input, .. } => collect_equi_classes(input, uf),
    }
}

struct Ctx<'a> {
    catalog: &'a SchemaCatalog,
    classes: UnionFind,
    diags: &'a mut Vec<TypeDiagnostic>,
}

impl Ctx<'_> {
    fn err(&mut self, code: TypeCode, node: impl Into<String>, msg: impl Into<String>) {
        self.diags.push(TypeDiagnostic::error(code, node, msg));
    }
}

/// The attribute references `(var, attr)` a predicate reads.
fn pred_refs(p: &Predicate) -> Vec<(VarId, Attr)> {
    [p.lhs, p.rhs]
        .into_iter()
        .filter_map(|e| match e {
            Expr::Var(v, a) => Some((v, a)),
            Expr::Const(_) => None,
        })
        .collect()
}

/// Check every attribute a predicate reads against the declared schema of
/// the column its variable is bound to (S001). Unbound variables are the
/// linter's concern (P004), not repeated here.
fn check_pred_attrs(cx: &mut Ctx<'_>, node_label: &str, p: &Predicate, variants: &[RowSchema]) {
    for (v, attr) in pred_refs(p) {
        for variant in variants {
            if let Some(col) = variant.columns.iter().find(|c| c.var == v) {
                if !cx.catalog.declares(col.etype, attr) {
                    cx.err(
                        TypeCode::UnknownAttribute,
                        node_label,
                        format!(
                            "predicate `{p}` reads e{}.{attr}, but source {} \
                             does not declare attribute `{attr}`",
                            v + 1,
                            col.type_name
                        ),
                    );
                    break; // one finding per reference is enough
                }
            }
        }
    }
}

fn infer(node: &PlanNode, cx: &mut Ctx<'_>) -> TypedNode {
    match node {
        PlanNode::Scan {
            etype,
            type_name,
            leaf,
            var,
            predicates,
        } => {
            let label = format!("Scan {type_name} [e{}]", var + 1);
            if leaf.etype != *etype {
                cx.err(
                    TypeCode::InconsistentVarType,
                    label.clone(),
                    format!(
                        "scan type {etype} disagrees with its leaf's type {} — e{} \
                         would bind conflicting event types",
                        leaf.etype,
                        var + 1
                    ),
                );
            }
            let row = RowSchema {
                columns: vec![Column {
                    var: *var,
                    etype: *etype,
                    type_name: type_name.clone(),
                }],
                ats: false,
                agg: false,
            };
            for f in &leaf.filters {
                if !cx.catalog.declares(*etype, f.attr) {
                    cx.err(
                        TypeCode::UnknownAttribute,
                        label.clone(),
                        format!(
                            "filter `{f}` reads attribute `{}`, undeclared by source \
                             {type_name}",
                            f.attr
                        ),
                    );
                }
            }
            for p in predicates {
                check_pred_attrs(cx, &label, p, std::slice::from_ref(&row));
            }
            TypedNode {
                label,
                schema: EdgeSchema {
                    variants: vec![row],
                    // `Tuple::from_event` sets key = event id.
                    key: KeyProvenance::SensorId(*var),
                },
                safety: ShardSafety::Stateless,
                children: Vec::new(),
            }
        }

        PlanNode::Join {
            left,
            right,
            windowing,
            partitioning,
            predicates,
            ats_check,
            key_pair,
            ..
        } => {
            let l = infer(left, cx);
            let r = infer(right, cx);
            let label = format!("Join {windowing} [{partitioning}]");

            // Variant product: each left shape can meet each right shape.
            let mut variants = Vec::new();
            for lv in &l.schema.variants {
                for rv in &r.schema.variants {
                    if let Some(dup) = lv
                        .columns
                        .iter()
                        .find(|c| rv.columns.iter().any(|d| d.var == c.var))
                    {
                        cx.err(
                            TypeCode::DuplicateColumn,
                            label.clone(),
                            format!(
                                "both sides bind e{} — the output layout would carry \
                                 a duplicate column",
                                dup.var + 1
                            ),
                        );
                    }
                    let mut columns = lv.columns.clone();
                    columns.extend(rv.columns.iter().cloned());
                    variants.push(RowSchema {
                        columns,
                        // `Tuple::join` propagates ats = l.ats.or(r.ats) …
                        ats: lv.ats || rv.ats,
                        // … and always clears agg.
                        agg: false,
                    });
                }
            }

            for p in predicates {
                check_pred_attrs(cx, &label, p, &variants);
            }

            if ats_check.is_some()
                && !l.schema.variants.iter().any(|v| v.ats)
                && !r.schema.variants.iter().any(|v| v.ats)
            {
                cx.err(
                    TypeCode::AtsWithoutProvider,
                    label.clone(),
                    "join checks the ats annotation but no input can carry one — \
                     every candidate match is statically rejected",
                );
            }

            let (key, safety) = match partitioning {
                Partitioning::ByKey => {
                    let key = match key_pair {
                        Some((kl, kr)) => {
                            if !cx.classes.same(*kl, *kr) {
                                cx.err(
                                    TypeCode::JoinKeyNotCoPartitioned,
                                    label.clone(),
                                    format!(
                                        "key pair (e{}, e{}) is not connected by the \
                                         plan's equi-key predicates — hashing each \
                                         side by its own id would separate matching \
                                         pairs and silently lose matches",
                                        kl + 1,
                                        kr + 1
                                    ),
                                );
                            }
                            // Physical planner re-keys the left side on kl;
                            // the join output keeps the left key.
                            KeyProvenance::SensorId(*kl)
                        }
                        // ByKey without a pair is P006; provenance unknown.
                        None => KeyProvenance::Mixed,
                    };
                    (key, ShardSafety::ShardableByKey)
                }
                Partitioning::Global => (KeyProvenance::Uniform, ShardSafety::GlobalOnly),
            };

            TypedNode {
                label,
                schema: EdgeSchema { variants, key },
                safety,
                children: vec![l, r],
            }
        }

        PlanNode::Union { inputs } => {
            let children: Vec<TypedNode> = inputs.iter().map(|i| infer(i, cx)).collect();
            // The physical planner projects every non-aggregate branch into
            // canonical (ascending-VarId) order before the union, so the
            // edge carries canonicalized variants.
            let mut variants = Vec::new();
            for (child, input) in children.iter().zip(inputs) {
                for v in &child.schema.variants {
                    let mut canon = v.clone();
                    if !matches!(input, PlanNode::Aggregate { .. }) {
                        canon.columns.sort_by_key(|c| c.var);
                    }
                    variants.push(canon);
                }
            }
            let key = children
                .iter()
                .map(|c| c.schema.key)
                .reduce(|a, b| if a == b { a } else { KeyProvenance::Mixed })
                .unwrap_or(KeyProvenance::Mixed);
            TypedNode {
                label: "Union".to_string(),
                schema: EdgeSchema { variants, key },
                safety: ShardSafety::Stateless,
                children,
            }
        }

        PlanNode::Aggregate {
            input,
            m,
            partitioning,
            ..
        } => {
            let c = infer(input, cx);
            let label = format!("Aggregate count ≥ {m} [{partitioning}]");
            if c.schema.variants.iter().any(|v| v.columns.len() != 1) {
                cx.err(
                    TypeCode::AggregateOverComposite,
                    label.clone(),
                    "count aggregation is defined over single scanned events, but \
                     the input carries composite tuples",
                );
            }
            // The aggregate emits a representative (last-contributing)
            // tuple with the pane key and agg populated.
            let variants: Vec<RowSchema> = c
                .schema
                .variants
                .iter()
                .map(|v| RowSchema {
                    agg: true,
                    ..v.clone()
                })
                .collect();
            let (key, safety) = match partitioning {
                Partitioning::ByKey => {
                    if !matches!(c.schema.key, KeyProvenance::SensorId(_)) {
                        cx.err(
                            TypeCode::AggregateKeyProvenance,
                            label.clone(),
                            format!(
                                "ByKey aggregation requires a sensor-id-keyed input, \
                                 but the input key is {} — per-key counts would be \
                                 grouped arbitrarily",
                                c.schema.key
                            ),
                        );
                    }
                    (c.schema.key, ShardSafety::ShardableByKey)
                }
                Partitioning::Global => (KeyProvenance::Uniform, ShardSafety::GlobalOnly),
            };
            TypedNode {
                label,
                schema: EdgeSchema { variants, key },
                safety,
                children: vec![c],
            }
        }

        PlanNode::NextOccurrence {
            trigger, marker, ..
        } => {
            let c = infer(trigger, cx);
            let label = format!("NextOccurrence(¬{})", marker.type_name);
            // The UDF re-emits each trigger annotated with ats (always
            // populated: next marker ts, or ts + W when none arrives).
            let variants: Vec<RowSchema> = c
                .schema
                .variants
                .iter()
                .map(|v| RowSchema {
                    ats: true,
                    ..v.clone()
                })
                .collect();
            let key = c.schema.key;
            TypedNode {
                label,
                schema: EdgeSchema { variants, key },
                // Holds cross-key trigger/marker state in one instance.
                safety: ShardSafety::GlobalOnly,
                children: vec![c],
            }
        }

        PlanNode::Project { input, layout } => {
            let c = infer(input, cx);
            let cols: Vec<String> = layout.iter().map(|v| format!("e{}", v + 1)).collect();
            let label = format!("Project [{}]", cols.join(", "));
            let variants = if let [only] = c.schema.variants.as_slice() {
                let mut in_vars = only.layout();
                let mut out_vars = layout.clone();
                in_vars.sort_unstable();
                out_vars.sort_unstable();
                if in_vars == out_vars {
                    let columns = layout
                        .iter()
                        .filter_map(|v| only.columns.iter().find(|c| c.var == *v).cloned())
                        .collect();
                    vec![RowSchema {
                        columns,
                        ats: only.ats,
                        agg: only.agg,
                    }]
                } else {
                    cx.err(
                        TypeCode::ProjectionLayoutMismatch,
                        label.clone(),
                        format!(
                            "projection layout {:?} is not a permutation of the \
                             input columns {:?}",
                            layout,
                            only.layout()
                        ),
                    );
                    c.schema.variants.clone()
                }
            } else {
                cx.err(
                    TypeCode::ProjectionLayoutMismatch,
                    label.clone(),
                    format!(
                        "projection over a {}-variant input has no single layout \
                         to permute",
                        c.schema.variants.len()
                    ),
                );
                c.schema.variants.clone()
            };
            let key = c.schema.key;
            TypedNode {
                label,
                schema: EdgeSchema { variants, key },
                safety: ShardSafety::Stateless,
                children: vec![c],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::EventType;
    use asp::time::Duration;
    use sea::pattern::{Leaf, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    use crate::plan::JoinWindowing;

    fn scan(t: u16, var: VarId) -> PlanNode {
        PlanNode::Scan {
            etype: EventType(t),
            type_name: format!("T{t}"),
            leaf: Leaf::new(EventType(t), format!("T{t}"), format!("e{}", var + 1)),
            var,
            predicates: vec![],
        }
    }

    fn join(left: PlanNode, right: PlanNode) -> PlanNode {
        PlanNode::Join {
            left: Box::new(left),
            right: Box::new(right),
            windowing: JoinWindowing::Sliding {
                size: Duration::from_minutes(4),
                slide: Duration::from_minutes(1),
            },
            partitioning: Partitioning::Global,
            order_pairs: vec![],
            predicates: vec![],
            span_ms: 4 * asp::time::MINUTE_MS,
            ats_check: None,
            key_pair: None,
        }
    }

    fn plan(root: PlanNode) -> LogicalPlan {
        LogicalPlan {
            root,
            positions: 2,
            mapping: "test".into(),
            window: WindowSpec::minutes(4),
        }
    }

    fn codes(p: &LogicalPlan) -> Vec<TypeCode> {
        typecheck(p)
            .diagnostics
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_join_infers_schema_and_key() {
        let res = typecheck(&plan(join(scan(0, 0), scan(1, 1))));
        assert!(res.is_clean(), "{}", res.render());
        assert_eq!(res.root.schema.variants.len(), 1);
        assert_eq!(res.root.schema.variants[0].layout(), vec![0, 1]);
        assert_eq!(res.root.schema.key, KeyProvenance::Uniform);
        assert_eq!(res.root.safety, ShardSafety::GlobalOnly);
        assert_eq!(res.root.children.len(), 2);
        assert_eq!(res.root.children[0].schema.key, KeyProvenance::SensorId(0));
        assert_eq!(res.root.children[0].safety, ShardSafety::Stateless);
    }

    #[test]
    fn s001_undeclared_attribute() {
        let mut root = join(scan(0, 0), scan(1, 1));
        if let PlanNode::Join { predicates, .. } = &mut root {
            predicates.push(Predicate::cross(0, Attr::Lat, CmpOp::Lt, 1, Attr::Lat));
        }
        let p = plan(root);
        let mut cat = SchemaCatalog::new();
        cat.declare(EventType(0), "T0", &[Attr::Value]);
        let res = typecheck_with(&p, &cat);
        let codes: Vec<TypeCode> = res.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![TypeCode::UnknownAttribute]);
        // Permissive catalog accepts the same plan.
        assert!(typecheck(&p).is_clean());
    }

    #[test]
    fn s002_scan_leaf_type_clash() {
        let mut s = scan(0, 0);
        if let PlanNode::Scan { etype, .. } = &mut s {
            *etype = EventType(9);
        }
        assert_eq!(codes(&plan(s)), vec![TypeCode::InconsistentVarType]);
    }

    #[test]
    fn s003_duplicate_column() {
        let p = plan(join(scan(0, 0), scan(1, 0)));
        assert!(codes(&p).contains(&TypeCode::DuplicateColumn));
    }

    #[test]
    fn s004_layout_permutation_rejected() {
        // e3 is not a column of the input {e1, e2}.
        let root = PlanNode::Project {
            input: Box::new(join(scan(0, 0), scan(1, 1))),
            layout: vec![0, 2],
        };
        assert_eq!(codes(&plan(root)), vec![TypeCode::ProjectionLayoutMismatch]);
        // A true permutation is accepted and reorders the columns.
        let ok = PlanNode::Project {
            input: Box::new(join(scan(0, 0), scan(1, 1))),
            layout: vec![1, 0],
        };
        let res = typecheck(&plan(ok));
        assert!(res.is_clean(), "{}", res.render());
        assert_eq!(res.root.schema.variants[0].layout(), vec![1, 0]);
        assert_eq!(res.root.safety, ShardSafety::Stateless);
    }

    #[test]
    fn s005_miskeyed_join_rejected() {
        // ByKey with key pair (e1, e2) but the only equi-key predicate
        // relates e1 to itself — nothing proves id(e1) = id(e2).
        let mut root = join(scan(0, 0), scan(1, 1));
        if let PlanNode::Join {
            partitioning,
            key_pair,
            ..
        } = &mut root
        {
            *partitioning = Partitioning::ByKey;
            *key_pair = Some((0, 1));
        }
        assert_eq!(codes(&plan(root)), vec![TypeCode::JoinKeyNotCoPartitioned]);
        // With the equi-key predicate attached, the same plan is sound.
        let mut ok = join(scan(0, 0), scan(1, 1));
        if let PlanNode::Join {
            partitioning,
            key_pair,
            predicates,
            ..
        } = &mut ok
        {
            *partitioning = Partitioning::ByKey;
            *key_pair = Some((0, 1));
            predicates.push(Predicate::same_id(0, 1));
        }
        let res = typecheck(&plan(ok));
        assert!(res.is_clean(), "{}", res.render());
        assert_eq!(res.root.schema.key, KeyProvenance::SensorId(0));
        assert_eq!(res.root.safety, ShardSafety::ShardableByKey);
    }

    #[test]
    fn s006_global_input_to_bykey_aggregate() {
        let root = PlanNode::Aggregate {
            input: Box::new(join(scan(0, 0), scan(1, 1))),
            m: 2,
            window: WindowSpec::minutes(4),
            partitioning: Partitioning::ByKey,
        };
        let found = codes(&plan(root));
        assert!(
            found.contains(&TypeCode::AggregateKeyProvenance),
            "{found:?}"
        );
    }

    #[test]
    fn s007_ats_check_without_provider() {
        let mut root = join(scan(0, 0), scan(1, 1));
        if let PlanNode::Join { ats_check, .. } = &mut root {
            *ats_check = Some(1);
        }
        assert_eq!(codes(&plan(root)), vec![TypeCode::AtsWithoutProvider]);
    }

    #[test]
    fn s008_aggregate_over_composite() {
        let root = PlanNode::Aggregate {
            input: Box::new(join(scan(0, 0), scan(1, 1))),
            m: 2,
            window: WindowSpec::minutes(4),
            partitioning: Partitioning::Global,
        };
        assert_eq!(codes(&plan(root)), vec![TypeCode::AggregateOverComposite]);
    }

    #[test]
    fn next_occurrence_provides_ats_downstream() {
        // NSEQ shape: NextOccurrence feeds the left side of an ats-checked
        // join — no S007.
        let mut root = join(
            PlanNode::NextOccurrence {
                trigger: Box::new(scan(0, 0)),
                marker: Leaf::new(EventType(7), "N", "n"),
                w: Duration::from_minutes(4),
            },
            scan(1, 1),
        );
        if let PlanNode::Join { ats_check, .. } = &mut root {
            *ats_check = Some(1);
        }
        let res = typecheck(&plan(root));
        assert!(res.is_clean(), "{}", res.render());
        let no = &res.root.children[0];
        assert!(no.schema.variants[0].ats);
        assert_eq!(no.safety, ShardSafety::GlobalOnly);
        // The join output inherits the ats channel.
        assert!(res.root.schema.variants[0].ats);
    }

    #[test]
    fn union_of_mixed_keys_is_mixed() {
        let p = plan(PlanNode::Union {
            inputs: vec![scan(0, 0), scan(1, 1)],
        });
        let res = typecheck(&p);
        assert!(res.is_clean());
        assert_eq!(res.root.schema.key, KeyProvenance::Mixed);
        assert_eq!(res.root.schema.variants.len(), 2);
    }

    #[test]
    fn json_artifact_is_well_formed_enough() {
        let res = typecheck(&plan(join(scan(0, 0), scan(1, 1))));
        let j = res.to_json();
        assert!(j.starts_with("{\"clean\":true"), "{j}");
        assert!(j.contains("\"kind\":\"uniform\""), "{j}");
        assert!(j.contains("\"safety\":\"global-only\""), "{j}");
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces: {j}"
        );
    }
}
