//! The falsifiability loop, exercised explicitly: for a determinism-style
//! grid of patterns × executor configurations, compute the analyzer's
//! concrete-stream [`runtime_bounds`] up front and assert the executed
//! run's telemetry never violates them ([`RunReport::check_bounds`]).
//!
//! `exec::run_pattern` already performs this cross-check as a
//! `debug_assert!`, but silently — this suite makes the contract a
//! first-class test (and keeps it in release builds of the test profile),
//! and pins the half-open window boundary end-to-end: a pair `W − 1` ms
//! apart matches, a pair exactly `W` apart does not.

#![allow(clippy::unwrap_used)]

use std::collections::HashMap;

use asp::event::{Attr, Event, EventType};
use asp::runtime::ExecutorConfig;
use asp::time::Timestamp;
use cep2asp::exec::{run_pattern, split_by_type};
use cep2asp::{runtime_bounds, translate, MapperOptions, PhysicalConfig};
use sea::pattern::{builders, Leaf, Pattern, WindowSpec};
use sea::predicate::{CmpOp, Predicate};

const Q: EventType = EventType(0);
const V: EventType = EventType(1);
const P: EventType = EventType(2);

/// A deterministic mixed-rate stream set: Q every minute, V every 2
/// minutes, P every 5 minutes, ids cycling over 4 sensors.
fn sources(minutes: i64) -> HashMap<EventType, Vec<Event>> {
    let mut events = Vec::new();
    for m in 0..minutes {
        let id = (m % 4) as u32;
        events.push(Event::new(
            Q,
            id,
            Timestamp::from_minutes(m),
            (m % 97) as f64,
        ));
        if m % 2 == 0 {
            events.push(Event::new(
                V,
                id,
                Timestamp::from_minutes(m),
                (m % 89) as f64,
            ));
        }
        if m % 5 == 0 {
            events.push(Event::new(
                P,
                id,
                Timestamp::from_minutes(m),
                (m % 83) as f64,
            ));
        }
    }
    split_by_type(&events)
}

fn grid_patterns(w: i64) -> Vec<(&'static str, Pattern, MapperOptions)> {
    let seq2 = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(w), vec![]);
    let seq3 = builders::seq(
        &[(Q, "Q"), (V, "V"), (P, "P")],
        WindowSpec::minutes(w),
        vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 60.0)],
    );
    let keyed = builders::seq(
        &[(Q, "Q"), (V, "V")],
        WindowSpec::minutes(w),
        vec![Predicate::same_id(0, 1)],
    );
    let iter2 = builders::iter(V, "V", 2, WindowSpec::minutes(w), vec![]);
    let nseq = builders::nseq(
        (Q, "Q"),
        Leaf::new(P, "P", "n").with_filter(Attr::Value, CmpOp::Le, 20.0),
        (V, "V"),
        WindowSpec::minutes(w),
        vec![],
    );
    vec![
        ("seq2-plain", seq2.clone(), MapperOptions::plain()),
        ("seq2-o1", seq2, MapperOptions::o1()),
        ("seq3-o1", seq3.clone(), MapperOptions::o1()),
        ("seq3-plain", seq3, MapperOptions::plain()),
        ("keyed-o1o3", keyed, MapperOptions::o1().and_o3()),
        ("iter2-plain", iter2, MapperOptions::plain()),
        ("nseq-o1", nseq, MapperOptions::o1()),
    ]
}

#[test]
fn telemetry_never_violates_static_bounds_across_the_grid() {
    let sources = sources(40);
    let phys = PhysicalConfig::default();
    for (name, pattern, opts) in grid_patterns(6) {
        let plan = translate(&pattern, &opts).unwrap();
        let bounds = runtime_bounds(&plan, &pattern, &sources, &phys);
        for batch_size in [1usize, 64] {
            for chaining in [false, true] {
                let exec = ExecutorConfig {
                    batch_size,
                    operator_chaining: chaining,
                    ..ExecutorConfig::default()
                };
                let run = run_pattern(&pattern, &opts, &sources, &phys, &exec).unwrap();
                let violations = run.report.check_bounds(&bounds);
                assert!(
                    violations.is_empty(),
                    "{name} (batch={batch_size}, chaining={chaining}): {}",
                    violations
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; ")
                );
            }
        }
    }
}

#[test]
fn bounds_are_not_vacuous() {
    // Guard against check_bounds silently passing because the bounds were
    // never populated: the computed bounds must be finite and an absurdly
    // small hand-made bound must be reported as violated.
    let sources = sources(40);
    let phys = PhysicalConfig::default();
    let pattern = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(6), vec![]);
    let opts = MapperOptions::plain();
    let plan = translate(&pattern, &opts).unwrap();
    let bounds = runtime_bounds(&plan, &pattern, &sources, &phys);
    assert!(bounds.max_sink_tuples.is_some() && bounds.max_total_state_bytes.is_some());
    assert!(
        bounds.max_keyed_run.unwrap() > 0,
        "a join plan must claim a positive keyed-run bound"
    );

    let run = run_pattern(&pattern, &opts, &sources, &phys, &ExecutorConfig::default()).unwrap();
    assert!(run.raw_count() > 0, "grid workload must produce matches");
    // Some(0) for the keyed run: any join that buffered a tuple peaks ≥ 1.
    let absurd = asp::StaticBounds {
        max_sink_tuples: Some(0),
        max_total_state_bytes: Some(1),
        max_keyed_run: Some(0),
        origin: "test".into(),
    };
    let violations = run.report.check_bounds(&absurd);
    assert_eq!(violations.len(), 3, "{violations:?}");
}

/// End-to-end pin of the half-open window boundary: with `W = 4` minutes,
/// a (Q, V) pair `W − 1` ms apart is co-hosted by some window `[k·s,
/// k·s + W)` and must match; a pair exactly `W` apart can never share a
/// window and must not. Oracle and mapped plans must agree on both.
#[test]
fn window_boundary_is_half_open_end_to_end() {
    let w_ms = 4 * 60_000;
    for (gap_ms, expect_match) in [(w_ms - 1, true), (w_ms, false)] {
        let events = vec![
            Event::new(Q, 1, Timestamp(0), 10.0),
            Event::new(V, 1, Timestamp(gap_ms), 20.0),
        ];
        let pattern = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let oracle = sea::oracle::evaluate(&pattern, &events);
        assert_eq!(
            !oracle.is_empty(),
            expect_match,
            "oracle at gap {gap_ms} ms"
        );
        for opts in [MapperOptions::plain(), MapperOptions::o1()] {
            let run = run_pattern(
                &pattern,
                &opts,
                &split_by_type(&events),
                &PhysicalConfig::default(),
                &ExecutorConfig::default(),
            )
            .unwrap();
            assert_eq!(
                !run.dedup_matches().is_empty(),
                expect_match,
                "mapped plan at gap {gap_ms} ms"
            );
        }
    }
}
