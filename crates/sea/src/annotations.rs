//! Source-rate / selectivity annotations for static plan analysis.
//!
//! [`Annotations`] carries the per-type arrival rates, per-position
//! predicate selectivities, and worst-case per-window event counts that
//! `cep2asp::analyze` propagates bottom-up through a logical plan. Two
//! construction modes:
//!
//! * [`Annotations::for_pattern`] — defaults derived from the pattern
//!   alone: minute-granularity sensors (1 event/min per input type, the
//!   paper's QnV/AQ arrival model), selectivity `0.5` per predicate term
//!   (arity-derived), and per-window peaks of `rate × W`;
//! * [`Annotations::measured`] — rates, per-leaf pass rates, and *actual*
//!   per-aligned-window maxima measured from concrete streams. Bounds
//!   computed from measured annotations are hard upper bounds for that
//!   run, which is what makes the cost model falsifiable against the
//!   runtime telemetry (see `RunReport::check_bounds` in `asp`).
//!
//! Window math shared with the analyzer lives on [`WindowSpec`]
//! ([`WindowSpec::duplication_factor`], [`WindowSpec::windows_per_minute`],
//! [`WindowSpec::size_minutes`]); the window convention throughout is the
//! oracle's half-open `[k·s, k·s + W)`.

use std::collections::HashMap;

use asp::event::{Event, EventType};

use crate::pattern::{Pattern, PatternExpr, WindowSpec};
use crate::predicate::VarId;

/// Default arrival rate assumed for un-annotated types (events/minute) —
/// the minute-granularity sensor model of the paper's datasets.
pub const DEFAULT_RATE_PER_MIN: f64 = 1.0;

/// Default pass rate assumed per predicate term (leaf filter, pushed-down
/// single-variable predicate, or cross predicate) when nothing was
/// measured.
pub const DEFAULT_TERM_SELECTIVITY: f64 = 0.5;

impl WindowSpec {
    /// Window size in minutes (fractional).
    pub fn size_minutes(&self) -> f64 {
        self.size.millis() as f64 / 60_000.0
    }

    /// Slide in minutes (fractional).
    pub fn slide_minutes(&self) -> f64 {
        self.slide.millis() as f64 / 60_000.0
    }

    /// How many half-open windows `[k·s, k·s + W)` contain one event:
    /// `⌈W / s⌉` — the duplicate-emission factor of the sliding-window
    /// mapping (paper Section 3.1.4).
    pub fn duplication_factor(&self) -> f64 {
        let s = self.slide.millis().max(1);
        ((self.size.millis() + s - 1) / s).max(1) as f64
    }

    /// How many window instances fire per minute (`1 / slide`).
    pub fn windows_per_minute(&self) -> f64 {
        60_000.0 / self.slide.millis().max(1) as f64
    }
}

/// Per-plan source-rate and selectivity annotations (see module docs).
#[derive(Debug, Clone)]
pub struct Annotations {
    /// The pattern window the annotations were derived against.
    pub window: WindowSpec,
    /// Assumed selectivity of one cross (multi-variable) predicate.
    pub cross_selectivity: f64,
    /// Number of distinct partition keys (sensor ids) an equi-key join
    /// fans out over; `1.0` when unknown.
    pub key_fanout: f64,
    rates: HashMap<EventType, f64>,
    selectivities: HashMap<VarId, f64>,
    max_per_window: HashMap<EventType, f64>,
}

impl Annotations {
    /// Defaults derived from the pattern alone: every input type arrives
    /// at [`DEFAULT_RATE_PER_MIN`], each predicate term on a position
    /// contributes [`DEFAULT_TERM_SELECTIVITY`], and per-window peaks are
    /// `2 × rate × W` (double the expectation, a mild burst allowance).
    pub fn for_pattern(pattern: &Pattern) -> Self {
        let mut rates = HashMap::new();
        let mut max_per_window = HashMap::new();
        let w_min = pattern.window.size_minutes();
        for t in pattern.expr.input_types() {
            rates.insert(t, DEFAULT_RATE_PER_MIN);
            max_per_window.insert(t, (2.0 * DEFAULT_RATE_PER_MIN * w_min).max(1.0));
        }
        let mut selectivities = HashMap::new();
        for leaf in pattern.expr.leaves() {
            if leaf.var == usize::MAX {
                continue;
            }
            let terms = leaf.filters.len() + pattern.single_var_predicates(leaf.var).len();
            selectivities.insert(leaf.var, DEFAULT_TERM_SELECTIVITY.powi(terms as i32));
        }
        Annotations {
            window: pattern.window,
            cross_selectivity: DEFAULT_TERM_SELECTIVITY,
            key_fanout: 1.0,
            rates,
            selectivities,
            max_per_window,
        }
    }

    /// Measure rates, per-leaf pass rates, per-window maxima, and key
    /// fanout from concrete per-type streams. Streams need not be sorted;
    /// a sorted copy is taken per type.
    pub fn measured(pattern: &Pattern, sources: &HashMap<EventType, Vec<Event>>) -> Self {
        let mut ann = Annotations::for_pattern(pattern);
        let w = pattern.window.size.millis().max(1);
        let s = pattern.window.slide.millis().max(1);
        let mut ids: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (t, evs) in sources {
            if evs.is_empty() {
                ann.rates.insert(*t, 0.0);
                ann.max_per_window.insert(*t, 0.0);
                continue;
            }
            let mut ts: Vec<i64> = evs.iter().map(|e| e.ts.millis()).collect();
            ts.sort_unstable();
            let span_ms = (ts[ts.len() - 1] - ts[0]).max(1) as f64;
            ann.rates
                .insert(*t, evs.len() as f64 / (span_ms / 60_000.0).max(1.0 / 60.0));
            ann.max_per_window
                .insert(*t, max_aligned_window_count(&ts, w, s) as f64);
            ids.extend(evs.iter().map(|e| u64::from(e.id)));
        }
        ann.key_fanout = (ids.len() as f64).max(1.0);
        // Measured pass rates per bound leaf (type filter + leaf filters +
        // pushed-down single-variable predicates).
        for leaf in pattern.expr.leaves() {
            if leaf.var == usize::MAX {
                continue;
            }
            let Some(evs) = sources.get(&leaf.etype) else {
                continue;
            };
            if evs.is_empty() {
                continue;
            }
            let single = pattern.single_var_predicates(leaf.var);
            let mut binding: Vec<Option<Event>> = vec![None; pattern.positions().max(1)];
            let pass = evs
                .iter()
                .filter(|e| {
                    if !leaf.accepts(e) {
                        return false;
                    }
                    binding.iter_mut().for_each(|b| *b = None);
                    binding[leaf.var] = Some(**e);
                    single.iter().all(|p| p.eval_sparse(&binding))
                })
                .count();
            ann.selectivities
                .insert(leaf.var, pass as f64 / evs.len() as f64);
        }
        ann
    }

    /// Override the arrival rate of a type (events/minute).
    pub fn with_rate(mut self, t: EventType, rate_per_min: f64) -> Self {
        let w_min = self.window.size_minutes();
        self.rates.insert(t, rate_per_min);
        self.max_per_window
            .insert(t, (2.0 * rate_per_min * w_min).max(1.0));
        self
    }

    /// Override the selectivity of a bound position.
    pub fn with_selectivity(mut self, var: VarId, s: f64) -> Self {
        self.selectivities.insert(var, s);
        self
    }

    /// Arrival rate of a type, events/minute.
    pub fn rate(&self, t: EventType) -> f64 {
        self.rates.get(&t).copied().unwrap_or(DEFAULT_RATE_PER_MIN)
    }

    /// Post-filter selectivity of a bound position (`1.0` if unknown).
    pub fn selectivity(&self, var: VarId) -> f64 {
        self.selectivities.get(&var).copied().unwrap_or(1.0)
    }

    /// Worst-case events of a type in one half-open window
    /// `[k·s, k·s + W)`.
    pub fn max_per_window(&self, t: EventType) -> f64 {
        self.max_per_window
            .get(&t)
            .copied()
            .unwrap_or_else(|| (2.0 * self.rate(t) * self.window.size_minutes()).max(1.0))
    }
}

/// Maximum number of timestamps (sorted, ms) falling in any aligned
/// half-open window `[k·s, k·s + W)` — the oracle's window enumeration.
pub fn max_aligned_window_count(sorted_ts: &[i64], w_ms: i64, s_ms: i64) -> usize {
    if sorted_ts.is_empty() {
        return 0;
    }
    let s = s_ms.max(1);
    let w = w_ms.max(1);
    let min_ts = sorted_ts[0];
    let max_ts = sorted_ts[sorted_ts.len() - 1];
    let mut start = (min_ts - w + 1).div_euclid(s) * s;
    let mut best = 0usize;
    while start <= max_ts {
        let lo = sorted_ts.partition_point(|t| *t < start);
        let hi = sorted_ts.partition_point(|t| *t < start + w);
        best = best.max(hi - lo);
        start += s;
    }
    best
}

/// Maximum number of timestamps (sorted, ms) in any *unaligned* half-open
/// interval of the given length — bounds what an interval join or the NFA
/// can hold live at once (constituents of a partial match span `< W`
/// regardless of window alignment).
pub fn max_interval_count(sorted_ts: &[i64], len_ms: i64) -> usize {
    let mut best = 0usize;
    let mut lo = 0usize;
    for hi in 0..sorted_ts.len() {
        while sorted_ts[hi] - sorted_ts[lo] >= len_ms.max(1) {
            lo += 1;
        }
        best = best.max(hi - lo + 1);
    }
    best
}

/// Pattern-level worst-case match count for one window whose per-type
/// event counts are given by `counts` — the per-window soundness bound the
/// analyzer's plan-level estimates must never undercut (proptested against
/// the oracle in `tests/analyzer_soundness.rs`).
///
/// Predicates and ordering constraints only ever *reduce* matches, so they
/// are ignored: `SEQ`/`AND` multiply, `OR` sums, `ITER_m` counts
/// `C(n, m)` skip-till-any combinations (`Σ_{k≥m} C(n, k)` for Kleene+),
/// and `NSEQ` pairs first × last.
pub fn pattern_window_bound(expr: &PatternExpr, counts: &dyn Fn(EventType) -> f64) -> f64 {
    match expr {
        PatternExpr::Leaf(l) => counts(l.etype),
        PatternExpr::Seq(parts) | PatternExpr::And(parts) => parts
            .iter()
            .map(|p| pattern_window_bound(p, counts))
            .product(),
        PatternExpr::Or(parts) => parts.iter().map(|p| pattern_window_bound(p, counts)).sum(),
        PatternExpr::Iter { leaf, m, at_least } => {
            let n = counts(leaf.etype);
            if *at_least {
                // Σ_{k ≥ m} C(n, k) ≤ 2^n (capped to stay finite).
                2f64.powf(n.min(1024.0))
            } else {
                choose(n, *m)
            }
        }
        PatternExpr::NegSeq { first, last, .. } => counts(first.etype) * counts(last.etype),
    }
}

/// Worst-case live NFA partial matches (runs) for per-type counts taken
/// over any sliding window-length interval: `1 + Σ_k Π_{i≤k} n(tᵢ)` over
/// the bound stage prefixes (skip-till-any keeps every prefix combination
/// alive until the window expires it).
///
/// Stages mirror the NFA's compilation, not the expression's leaves: an
/// `ITER_m` contributes `m` stages of its type (each repetition binds its
/// own event, so length-`k` prefixes multiply `k` times), and a negation
/// leaf contributes none (the absent type gates transitions but never
/// binds a run of its own).
pub fn nfa_prefix_bound(pattern: &Pattern, counts: &dyn Fn(EventType) -> f64) -> f64 {
    fn stages(expr: &PatternExpr, out: &mut Vec<EventType>) {
        match expr {
            PatternExpr::Leaf(l) => out.push(l.etype),
            PatternExpr::Seq(parts) | PatternExpr::And(parts) | PatternExpr::Or(parts) => {
                for p in parts {
                    stages(p, out);
                }
            }
            PatternExpr::Iter { leaf, m, .. } => out.extend((0..*m).map(|_| leaf.etype)),
            PatternExpr::NegSeq { first, last, .. } => {
                out.push(first.etype);
                out.push(last.etype);
            }
        }
    }
    let mut sts = Vec::new();
    stages(&pattern.expr, &mut sts);
    let mut total = 1.0;
    let mut prefix = 1.0;
    for t in sts {
        prefix *= counts(t);
        total += prefix;
    }
    total
}

/// Real-valued falling-factorial binomial `C(n, m)` (0 when `n < m`).
fn choose(n: f64, m: usize) -> f64 {
    if n < m as f64 {
        return 0.0;
    }
    let mut acc = 1.0;
    for i in 0..m {
        acc = acc * (n - i as f64) / (i as f64 + 1.0);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::builders;
    use crate::predicate::{CmpOp, Predicate};
    use asp::event::Attr;
    use asp::time::Timestamp;

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);

    fn minute_stream(t: EventType, n: usize) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(t, 1, Timestamp(i as i64 * 60_000), (i % 100) as f64))
            .collect()
    }

    #[test]
    fn defaults_derive_from_predicate_arity() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            crate::pattern::WindowSpec::minutes(4),
            vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 50.0)],
        );
        let ann = Annotations::for_pattern(&p);
        assert!((ann.selectivity(0) - 0.5).abs() < 1e-9, "one term → 0.5");
        assert!((ann.selectivity(1) - 1.0).abs() < 1e-9, "no terms → 1.0");
        assert!((ann.rate(Q) - 1.0).abs() < 1e-9);
        // Peak default: 2 × rate × W.
        assert!((ann.max_per_window(Q) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn measured_rates_and_window_maxima() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            crate::pattern::WindowSpec::minutes(4),
            vec![],
        );
        let sources = HashMap::from([(Q, minute_stream(Q, 60)), (V, minute_stream(V, 60))]);
        let ann = Annotations::measured(&p, &sources);
        assert!((ann.rate(Q) - 1.0).abs() < 0.1, "rate {}", ann.rate(Q));
        // One event per minute, 4-minute window → exactly 4 per window.
        assert!((ann.max_per_window(Q) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn aligned_window_count_is_half_open() {
        // W = 4, s = 2: window [0, 4) holds ts 0..3 but not ts 4.
        assert_eq!(max_aligned_window_count(&[0, 3], 4, 2), 2);
        // ts 0 and 4 never share a window: the end is exclusive.
        assert_eq!(max_aligned_window_count(&[0, 4], 4, 2), 1);
    }

    #[test]
    fn interval_count_is_strict() {
        // Span < len: both in one interval; span == len: never together.
        assert_eq!(max_interval_count(&[0, 3], 4), 2);
        assert_eq!(max_interval_count(&[0, 4], 4), 1);
    }

    #[test]
    fn window_bound_formulas() {
        let w = crate::pattern::WindowSpec::minutes(4);
        let seq = builders::seq(&[(Q, "Q"), (V, "V")], w, vec![]);
        let counts = |t: EventType| if t == Q { 3.0 } else { 5.0 };
        assert!((pattern_window_bound(&seq.expr, &counts) - 15.0).abs() < 1e-9);
        let it = builders::iter(V, "V", 2, w, vec![]);
        // C(5, 2) = 10.
        assert!((pattern_window_bound(&it.expr, &counts) - 10.0).abs() < 1e-9);
        let kp = builders::kleene_plus(V, "V", 2, w);
        assert!(pattern_window_bound(&kp.expr, &counts) >= 10.0);
    }

    #[test]
    fn nfa_bound_sums_prefix_products() {
        let w = crate::pattern::WindowSpec::minutes(4);
        let seq = builders::seq(&[(Q, "Q"), (V, "V")], w, vec![]);
        let counts = |t: EventType| if t == Q { 3.0 } else { 5.0 };
        // 1 + 3 + 3·5 = 19.
        assert!((nfa_prefix_bound(&seq, &counts) - 19.0).abs() < 1e-9);
    }

    #[test]
    fn duplication_factor_is_ceiling() {
        let w = crate::pattern::WindowSpec::minutes(4);
        assert!((w.duplication_factor() - 4.0).abs() < 1e-9);
        let w = crate::pattern::WindowSpec::minutes(5)
            .with_slide(asp::time::Duration::from_millis(120_000));
        assert!((w.duplication_factor() - 3.0).abs() < 1e-9, "⌈5/2⌉ = 3");
    }
}
