//! # sea — Simple Event Algebra
//!
//! The formal layer of the CEP-to-ASP reproduction: the SEA operator set of
//! *Bridging the Gap* (Ziehn et al., EDBT 2024), Section 3, with
//!
//! * [`pattern`] — the operator tree ([`Pattern`], [`PatternExpr`]):
//!   sequence, conjunction, disjunction, iteration (incl. the Kleene+
//!   extension), negated sequence, plus the mandatory `WITHIN (W, s)`
//!   window and `WHERE` predicates over bound variables;
//! * [`predicate`] — interpretable comparison predicates shared by every
//!   engine so semantics cannot drift;
//! * [`oracle`] — a literal, exhaustive implementation of the formal
//!   semantics (Equations 3–14) used as ground truth in property tests;
//! * [`parser`] — the SASE+-style declarative pattern language
//!   (`PATTERN … WHERE … WITHIN … RETURN *`) the paper sketches as future
//!   work.

pub mod annotations;
pub mod oracle;
pub mod parser;
pub mod pattern;
pub mod predicate;
pub mod schema;

pub use annotations::{
    max_aligned_window_count, max_interval_count, nfa_prefix_bound, pattern_window_bound,
    Annotations,
};
pub use parser::{parse, ParseError};
pub use pattern::{builders, Leaf, LocalFilter, Pattern, PatternError, PatternExpr, WindowSpec};
pub use predicate::{CmpOp, Expr, Predicate, VarId};
pub use schema::{SchemaCatalog, SourceSchema};
