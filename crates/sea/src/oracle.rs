//! Reference (oracle) evaluator: a literal implementation of the formal
//! operator semantics of Section 3.2 (Equations 3–14) over materialized
//! substreams.
//!
//! The oracle makes no attempt to be fast — it enumerates matches by
//! exhaustive search per window and is the *ground truth* that both the NFA
//! engine (`cep`) and the mapped ASP plans (`cep2asp`) are property-tested
//! against: `dedup(engine output) == oracle(stream)`.

use std::collections::HashSet;

use asp::event::Event;
use asp::time::Timestamp;
use asp::tuple::MatchKey;
use asp::window::WindowId;

use crate::pattern::{Pattern, PatternExpr};
use crate::predicate::VarId;

/// A match binding: `binding[var]` is the event bound at that position
/// (`None` for positions of non-taken disjunction branches).
pub type Binding = Vec<Option<Event>>;

/// A completed match: the participating events in position order — the
/// composite event `ce(e1, …, en)` of the paper's data model.
pub type Match = Vec<Event>;

/// Evaluate a pattern over a stream with the pattern's sliding windows and
/// return the **deduplicated** set of matches (the semantic-equivalence
/// baseline of Section 4: equivalence is modulo duplicates from
/// overlapping windows).
pub fn evaluate(pattern: &Pattern, events: &[Event]) -> Vec<Match> {
    let mut seen: HashSet<MatchKey> = HashSet::new();
    let mut out = Vec::new();
    for (_wid, matches) in evaluate_per_window(pattern, events) {
        for m in matches {
            if seen.insert(MatchKey(m.clone())) {
                out.push(m);
            }
        }
    }
    out.sort_by_key(|a| MatchKey(a.clone()));
    out
}

/// Evaluate per substream, *keeping* duplicate detections across
/// overlapping windows (what a sliding-window execution actually emits).
pub fn evaluate_per_window(pattern: &Pattern, events: &[Event]) -> Vec<(WindowId, Vec<Match>)> {
    let mut sorted: Vec<Event> = events.to_vec();
    sorted.sort_by_key(|e| e.ts);
    if sorted.is_empty() {
        return Vec::new();
    }
    let assigner = pattern.window.assigner();
    let w = pattern.window.size.millis();
    let s = pattern.window.slide.millis();
    let min_ts = sorted.first().unwrap().ts.millis();
    let max_ts = sorted.last().unwrap().ts.millis();
    // All aligned windows [k·s, k·s + W) that intersect the event range.
    let first_start = ((min_ts - w + 1).max(0) + s - 1).div_euclid(s) * s;
    let mut out = Vec::new();
    let mut start = first_start.max(0) - first_start.max(0).rem_euclid(s);
    while start <= max_ts {
        let wid = WindowId {
            start: Timestamp(start),
            end: Timestamp(start + w),
        };
        let lo = sorted.partition_point(|e| e.ts < wid.start);
        let hi = sorted.partition_point(|e| e.ts < wid.end);
        let content = &sorted[lo..hi];
        if !content.is_empty() {
            let matches = evaluate_window(pattern, content);
            if !matches.is_empty() {
                out.push((wid, matches));
            }
        }
        start += s;
    }
    // Sanity: the assigner and this enumeration agree on window shape.
    debug_assert_eq!(assigner.windows_per_event(), ((w + s - 1) / s) as usize);
    out
}

/// Evaluate the pattern inside one finite substream `S_k` (Theorem 1
/// semantics: all matches whose events fall inside the window).
pub fn evaluate_window(pattern: &Pattern, content: &[Event]) -> Vec<Match> {
    let positions = pattern.positions();
    let bindings = eval_expr(&pattern.expr, content, positions);
    let mut out = Vec::new();
    for b in bindings {
        if pattern.predicates.iter().all(|p| p.eval_sparse(&b)) {
            out.push(b.into_iter().flatten().collect());
        }
    }
    out
}

fn bind_span(b: &Binding) -> Option<(Timestamp, Timestamp)> {
    let mut min = None;
    let mut max = None;
    for e in b.iter().flatten() {
        min = Some(min.map_or(e.ts, |m: Timestamp| m.min(e.ts)));
        max = Some(max.map_or(e.ts, |m: Timestamp| m.max(e.ts)));
    }
    Some((min?, max?))
}

fn merge(a: &Binding, b: &Binding) -> Binding {
    a.iter().zip(b.iter()).map(|(x, y)| x.or(*y)).collect()
}

fn eval_expr(expr: &PatternExpr, content: &[Event], positions: usize) -> Vec<Binding> {
    match expr {
        PatternExpr::Leaf(leaf) => content
            .iter()
            .filter(|e| leaf.accepts(e))
            .map(|e| {
                let mut b: Binding = vec![None; positions];
                b[leaf.var] = Some(*e);
                b
            })
            .collect(),

        // Eq. 9 generalized: joint occurrence, no order constraint.
        PatternExpr::And(parts) => {
            let mut acc: Vec<Binding> = vec![vec![None; positions]];
            for p in parts {
                let rights = eval_expr(p, content, positions);
                let mut next = Vec::new();
                for a in &acc {
                    for r in &rights {
                        next.push(merge(a, r));
                    }
                }
                acc = next;
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }

        // Eq. 10 generalized: every event of the left part precedes every
        // event of the right part (nested composites use span ordering).
        PatternExpr::Seq(parts) => {
            let mut acc: Vec<Binding> = vec![vec![None; positions]];
            let mut first = true;
            for p in parts {
                let rights = eval_expr(p, content, positions);
                let mut next = Vec::new();
                for a in &acc {
                    for r in &rights {
                        if first {
                            next.push(merge(a, r));
                            continue;
                        }
                        let (Some((_, a_max)), Some((r_min, _))) = (bind_span(a), bind_span(r))
                        else {
                            continue;
                        };
                        if a_max < r_min {
                            next.push(merge(a, r));
                        }
                    }
                }
                acc = next;
                first = false;
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }

        // Eq. 11: either branch matches on its own.
        PatternExpr::Or(parts) => parts
            .iter()
            .flat_map(|p| eval_expr(p, content, positions))
            .collect(),

        // Eq. 12: exactly m occurrences in strict ts order; Kleene+ (≥ m,
        // the O2 extension) binds *all* accepted events of the window when
        // at least m occurred (count-based skip-till-any-match semantics).
        PatternExpr::Iter { leaf, m, at_least } => {
            let accepted: Vec<&Event> = content.iter().filter(|e| leaf.accepts(e)).collect();
            if *at_least {
                if accepted.len() >= *m {
                    // Kleene+ summary: all accepted events form the match.
                    return vec![all_bound(leaf.var, &accepted, positions)];
                }
                return Vec::new();
            }
            let mut out = Vec::new();
            let mut combo: Vec<&Event> = Vec::with_capacity(*m);
            fn rec<'a>(
                accepted: &[&'a Event],
                from: usize,
                m: usize,
                var0: VarId,
                positions: usize,
                combo: &mut Vec<&'a Event>,
                out: &mut Vec<Binding>,
            ) {
                if combo.len() == m {
                    let mut b: Binding = vec![None; positions];
                    for (i, e) in combo.iter().enumerate() {
                        b[var0 + i] = Some(**e);
                    }
                    out.push(b);
                    return;
                }
                for i in from..accepted.len() {
                    // Strict ts order (Eq. 12): equal timestamps don't chain.
                    if let Some(last) = combo.last() {
                        if accepted[i].ts <= last.ts {
                            continue;
                        }
                    }
                    combo.push(accepted[i]);
                    rec(accepted, i + 1, m, var0, positions, combo, out);
                    combo.pop();
                }
            }
            rec(&accepted, 0, *m, leaf.var, positions, &mut combo, &mut out);
            out
        }

        // Eq. 14: (e1, e3) pairs with no accepted absent event strictly
        // inside (e1.ts, e3.ts).
        PatternExpr::NegSeq {
            first,
            absent,
            last,
        } => {
            let firsts: Vec<&Event> = content.iter().filter(|e| first.accepts(e)).collect();
            let lasts: Vec<&Event> = content.iter().filter(|e| last.accepts(e)).collect();
            let absents: Vec<&Event> = content.iter().filter(|e| absent.accepts(e)).collect();
            let mut out = Vec::new();
            for e1 in &firsts {
                for e3 in &lasts {
                    if e1.ts >= e3.ts {
                        continue;
                    }
                    let negated = absents.iter().any(|e2| e2.ts > e1.ts && e2.ts < e3.ts);
                    if !negated {
                        let mut b: Binding = vec![None; positions];
                        b[first.var] = Some(**e1);
                        b[last.var] = Some(**e3);
                        out.push(b);
                    }
                }
            }
            out
        }
    }
}

fn all_bound(var0: VarId, accepted: &[&Event], positions: usize) -> Binding {
    // Kleene+ summary binding: stash every accepted event by extending the
    // binding beyond declared positions (the match payload is the full set).
    let mut b: Binding = vec![None; positions.max(var0 + accepted.len())];
    for (i, e) in accepted.iter().enumerate() {
        if var0 + i < b.len() {
            b[var0 + i] = Some(**e);
        }
    }
    b
}

/// Count of qualifying windows for a Kleene+ pattern — the quantity the O2
/// aggregation mapping reports (one output tuple per qualifying window).
pub fn kleene_qualifying_windows(pattern: &Pattern, events: &[Event]) -> usize {
    evaluate_per_window(pattern, events).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::builders;
    use crate::pattern::{Leaf, WindowSpec};
    use crate::predicate::{CmpOp, Predicate};
    use asp::event::{Attr, EventType};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);
    const PM: EventType = EventType(2);

    fn ev(t: EventType, min: i64, v: f64) -> Event {
        Event::new(t, 1, Timestamp::from_minutes(min), v)
    }

    #[test]
    fn seq_respects_order_and_window() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let stream = vec![ev(Q, 0, 1.0), ev(V, 2, 2.0), ev(V, 10, 3.0), ev(Q, 11, 4.0)];
        let matches = evaluate(&p, &stream);
        // (Q@0, V@2) within 4; (Q@0,V@10) outside; (Q@11, V@?) none after.
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0][0].ts, Timestamp::from_minutes(0));
        assert_eq!(matches[0][1].ts, Timestamp::from_minutes(2));
    }

    #[test]
    fn seq_equal_timestamps_do_not_match() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let stream = vec![ev(Q, 1, 1.0), ev(V, 1, 2.0)];
        assert!(evaluate(&p, &stream).is_empty(), "strict e1.ts < e2.ts");
    }

    #[test]
    fn and_is_order_free() {
        let p = builders::and(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let stream = vec![ev(V, 0, 1.0), ev(Q, 2, 2.0)];
        let matches = evaluate(&p, &stream);
        assert_eq!(matches.len(), 1, "V before Q still matches AND");
    }

    #[test]
    fn or_matches_single_events() {
        let p = builders::or(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4));
        let stream = vec![ev(Q, 0, 1.0), ev(V, 1, 2.0), ev(PM, 2, 3.0)];
        let matches = evaluate(&p, &stream);
        assert_eq!(matches.len(), 2);
        assert!(matches.iter().all(|m| m.len() == 1));
    }

    #[test]
    fn predicates_filter_matches() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(4),
            vec![Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value)],
        );
        let stream = vec![ev(Q, 0, 5.0), ev(V, 1, 4.0), ev(V, 2, 6.0)];
        let matches = evaluate(&p, &stream);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0][1].value, 6.0);
    }

    #[test]
    fn iter_enumerates_increasing_combinations() {
        let p = builders::iter(V, "V", 2, WindowSpec::minutes(10), vec![]);
        let stream = vec![ev(V, 0, 1.0), ev(V, 1, 2.0), ev(V, 2, 3.0)];
        // C(3,2) = 3 increasing pairs.
        assert_eq!(evaluate(&p, &stream).len(), 3);
    }

    #[test]
    fn iter_pairwise_constraint() {
        let p = builders::iter(
            V,
            "V",
            2,
            WindowSpec::minutes(10),
            vec![Predicate::cross(0, Attr::Value, CmpOp::Lt, 1, Attr::Value)],
        );
        let stream = vec![ev(V, 0, 3.0), ev(V, 1, 2.0), ev(V, 2, 5.0)];
        // Increasing-value pairs among increasing-ts pairs: (3,5), (2,5).
        assert_eq!(evaluate(&p, &stream).len(), 2);
    }

    #[test]
    fn kleene_plus_counts_windows() {
        let p = builders::kleene_plus(V, "V", 3, WindowSpec::minutes(5));
        let stream = vec![ev(V, 0, 1.0), ev(V, 1, 1.0), ev(V, 2, 1.0)];
        assert!(kleene_qualifying_windows(&p, &stream) >= 1);
        let sparse = vec![ev(V, 0, 1.0), ev(V, 30, 1.0)];
        assert_eq!(kleene_qualifying_windows(&p, &sparse), 0);
    }

    #[test]
    fn nseq_detects_absence_with_open_interval() {
        let absent = Leaf::new(V, "V", "n");
        let p = builders::nseq(
            (Q, "Q"),
            absent,
            (PM, "PM"),
            WindowSpec::minutes(10),
            vec![],
        );
        // Case 1: V strictly between Q and PM → negated.
        let blocked = vec![ev(Q, 0, 1.0), ev(V, 1, 2.0), ev(PM, 2, 3.0)];
        assert!(evaluate(&p, &blocked).is_empty());
        // Case 2: V at exactly PM's ts → open interval, NOT negated.
        let boundary = vec![ev(Q, 0, 1.0), ev(V, 2, 2.0), ev(PM, 2, 3.0)];
        assert_eq!(evaluate(&p, &boundary).len(), 1);
        // Case 3: no V at all.
        let clear = vec![ev(Q, 0, 1.0), ev(PM, 2, 3.0)];
        assert_eq!(evaluate(&p, &clear).len(), 1);
    }

    #[test]
    fn nseq_absent_filter_narrows_negation() {
        let absent = Leaf::new(V, "V", "n").with_filter(Attr::Value, CmpOp::Gt, 10.0);
        let p = builders::nseq(
            (Q, "Q"),
            absent,
            (PM, "PM"),
            WindowSpec::minutes(10),
            vec![],
        );
        // V with value 5 does not negate (filter requires > 10).
        let stream = vec![ev(Q, 0, 1.0), ev(V, 1, 5.0), ev(PM, 2, 3.0)];
        assert_eq!(evaluate(&p, &stream).len(), 1);
        let stream = vec![ev(Q, 0, 1.0), ev(V, 1, 50.0), ev(PM, 2, 3.0)];
        assert!(evaluate(&p, &stream).is_empty());
    }

    #[test]
    fn duplicates_appear_per_window_but_dedup_once() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let stream = vec![ev(Q, 10, 1.0), ev(V, 11, 2.0)];
        let per_window: usize = evaluate_per_window(&p, &stream)
            .iter()
            .map(|(_, m)| m.len())
            .sum();
        assert!(
            per_window > 1,
            "overlapping windows duplicate: {per_window}"
        );
        assert_eq!(evaluate(&p, &stream).len(), 1);
    }

    #[test]
    fn theorem2_no_match_lost_with_slide_one() {
        // Worst case: pair exactly W-1 apart must be found.
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let stream = vec![ev(Q, 7, 1.0), ev(V, 10, 2.0)]; // 3 min apart, W=4
        assert_eq!(evaluate(&p, &stream).len(), 1);
        let too_far = vec![ev(Q, 7, 1.0), ev(V, 11, 2.0)]; // exactly W apart
        assert!(evaluate(&p, &too_far).is_empty());
    }

    #[test]
    fn nested_seq_of_and_composes() {
        use crate::pattern::{Pattern, PatternExpr};
        let expr = PatternExpr::Seq(vec![
            PatternExpr::Leaf(Leaf::new(Q, "Q", "a")),
            PatternExpr::And(vec![
                PatternExpr::Leaf(Leaf::new(V, "V", "b")),
                PatternExpr::Leaf(Leaf::new(PM, "PM", "c")),
            ]),
        ]);
        let p = Pattern::new("mix", expr, WindowSpec::minutes(10), vec![]).unwrap();
        // Q@0 then {V@2, PM@1} — both after Q → match (AND is order-free).
        let stream = vec![ev(Q, 0, 1.0), ev(PM, 1, 2.0), ev(V, 2, 3.0)];
        assert_eq!(evaluate(&p, &stream).len(), 1);
        // PM before Q breaks the SEQ span ordering.
        let stream = vec![ev(PM, 0, 2.0), ev(Q, 1, 1.0), ev(V, 2, 3.0)];
        assert!(evaluate(&p, &stream).is_empty());
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        assert!(evaluate(&p, &[]).is_empty());
        assert!(evaluate_per_window(&p, &[]).is_empty());
    }
}
