//! A SASE+-style declarative pattern specification language (PSL).
//!
//! The paper's future-work section calls for "a PSL for Big Data and the
//! IoT combined with a parser that automatically transforms declarative
//! patterns into their respective execution pipeline"; this module is that
//! front end. The grammar follows the paper's Listing 1:
//!
//! ```text
//! PATTERN <structure>
//! [WHERE <predicate> (AND <predicate>)*]
//! WITHIN <n> <unit> [SLIDE <n> <unit>]
//! [RETURN *]
//! ```
//!
//! Structures: `SEQ(Q q, V v, …)`, `AND(…)`, `OR(…)`, `ITER(V v, 5)`,
//! Kleene+ `ITER(V v, 5+)`, negation `SEQ(Q a, NOT V n, PM b)`, and
//! arbitrary nesting of `SEQ`/`AND`/`OR`. Predicates compare
//! `var.attr` with another `var.attr` or a numeric literal using
//! `< <= > >= == !=`.

use std::fmt;

use asp::event::{Attr, TypeRegistry};
use asp::time::Duration;

use crate::pattern::{Leaf, Pattern, PatternError, PatternExpr, WindowSpec};
use crate::predicate::{CmpOp, Expr, Predicate};

/// A parse or semantic error with a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl From<PatternError> for ParseError {
    fn from(e: PatternError) -> Self {
        ParseError(e.to_string())
    }
}

/// Parse a pattern specification, interning event-type names into `types`.
pub fn parse(input: &str, types: &mut TypeRegistry) -> Result<Pattern, ParseError> {
    Parser::new(input, types)?.pattern()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Cmp(CmpOp),
    LParen,
    RParen,
    Comma,
    Dot,
    Plus,
    Star,
}

fn lex(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let b = input.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '<' | '>' | '=' | '!' => {
                let two = &input[i..(i + 2).min(input.len())];
                if let Some(op) = CmpOp::parse(two) {
                    toks.push(Tok::Cmp(op));
                    i += 2;
                } else if let Some(op) = CmpOp::parse(&input[i..i + 1]) {
                    toks.push(Tok::Cmp(op));
                    i += 1;
                } else {
                    return Err(ParseError(format!("unexpected character `{c}`")));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    // A digit followed by '.' then non-digit is `N .attr`? —
                    // numbers here are plain literals; `var.attr` always
                    // starts with a letter, so consuming '.' is safe.
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{text}`")))?;
                toks.push(Tok::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok::Ident(input[start..i].to_string()));
            }
            other => return Err(ParseError(format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

/// Raw `WHERE` term before variable resolution.
struct RawPredicate {
    lhs: RawOperand,
    op: CmpOp,
    rhs: RawOperand,
}

enum RawOperand {
    Var(String, Attr),
    Const(f64),
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    types: &'a mut TypeRegistry,
}

impl<'a> Parser<'a> {
    fn new(input: &str, types: &'a mut TypeRegistry) -> Result<Parser<'a>, ParseError> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
            types,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(ParseError(format!("expected {want:?}, got {got:?}")))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError(format!("expected {kw}, got {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError(format!("expected identifier, got {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.next()? {
            Tok::Number(n) => Ok(n),
            other => Err(ParseError(format!("expected number, got {other:?}"))),
        }
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        self.keyword("PATTERN")?;
        let mut expr = self.expr()?;
        let raw_preds = if self.at_keyword("WHERE") {
            self.keyword("WHERE")?;
            self.where_clause()?
        } else {
            Vec::new()
        };
        self.keyword("WITHIN")?;
        let size = self.duration()?;
        if size.millis() <= 0 {
            return Err(ParseError("WITHIN must be a positive duration".into()));
        }
        let slide = if self.at_keyword("SLIDE") {
            self.keyword("SLIDE")?;
            let slide = self.duration()?;
            if slide.millis() <= 0 || slide > size {
                return Err(ParseError(format!(
                    "SLIDE must be positive and no larger than WITHIN ({size})"
                )));
            }
            slide
        } else {
            // Default slide: one minute, clamped to the window size so
            // sub-minute windows stay valid.
            Duration::from_minutes(1).min(size)
        };
        if self.at_keyword("RETURN") {
            self.keyword("RETURN")?;
            // Only `RETURN *` (the default projection) is supported.
            self.expect(&Tok::Star)?;
        }
        if self.pos != self.toks.len() {
            return Err(ParseError(format!(
                "trailing input after pattern: {:?}",
                self.toks[self.pos]
            )));
        }

        // Resolve variables: assign positions, map names → vars.
        let mut expr_s = std::mem::replace(&mut expr, PatternExpr::Seq(vec![])).simplify();
        let mut next = 0;
        expr_s.assign_vars(&mut next);
        let mut names: Vec<(String, usize)> = Vec::new();
        let mut absent_names: Vec<String> = Vec::new();
        for leaf in expr_s.leaves() {
            if names.iter().any(|(n, _)| *n == leaf.var_name)
                || absent_names.contains(&leaf.var_name)
            {
                return Err(ParseError(format!(
                    "duplicate variable name `{}`",
                    leaf.var_name
                )));
            }
            if leaf.var == usize::MAX {
                absent_names.push(leaf.var_name.clone());
            } else {
                names.push((leaf.var_name.clone(), leaf.var));
            }
        }

        // Split WHERE terms: bound-variable terms become positional
        // predicates; absent-variable thresholds become leaf filters.
        let mut predicates = Vec::new();
        for rp in raw_preds {
            let to_expr = |o: &RawOperand| -> Result<Expr, ParseError> {
                match o {
                    RawOperand::Const(c) => Ok(Expr::Const(*c)),
                    RawOperand::Var(name, attr) => {
                        if let Some((_, var)) = names.iter().find(|(n, _)| n == name) {
                            Ok(Expr::Var(*var, *attr))
                        } else if absent_names.contains(name) {
                            Err(ParseError(format!(
                                "negated variable `{name}` may only appear in `{name}.attr OP constant` terms"
                            )))
                        } else {
                            Err(ParseError(format!("unknown variable `{name}`")))
                        }
                    }
                }
            };
            // Absent-leaf filter form: `n.attr OP const` or `const OP n.attr`.
            let absent_term = match (&rp.lhs, &rp.rhs) {
                (RawOperand::Var(n, a), RawOperand::Const(c)) if absent_names.contains(n) => {
                    Some((n.clone(), *a, rp.op, *c))
                }
                (RawOperand::Const(c), RawOperand::Var(n, a)) if absent_names.contains(n) => {
                    let flipped = match rp.op {
                        CmpOp::Lt => CmpOp::Gt,
                        CmpOp::Le => CmpOp::Ge,
                        CmpOp::Gt => CmpOp::Lt,
                        CmpOp::Ge => CmpOp::Le,
                        other => other,
                    };
                    Some((n.clone(), *a, flipped, *c))
                }
                _ => None,
            };
            if let Some((name, attr, op, c)) = absent_term {
                attach_absent_filter(&mut expr_s, &name, attr, op, c);
            } else {
                predicates.push(Predicate::new(to_expr(&rp.lhs)?, rp.op, to_expr(&rp.rhs)?));
            }
        }

        Ok(Pattern::new(
            "psl",
            expr_s,
            WindowSpec { size, slide },
            predicates,
        )?)
    }

    fn expr(&mut self) -> Result<PatternExpr, ParseError> {
        let head = self.ident()?;
        let upper = head.to_ascii_uppercase();
        match upper.as_str() {
            "SEQ" => self.seq_body(),
            "AND" | "OR" => {
                self.expect(&Tok::LParen)?;
                let mut parts = vec![self.expr()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.expect(&Tok::Comma)?;
                    parts.push(self.expr()?);
                }
                self.expect(&Tok::RParen)?;
                Ok(if upper == "AND" {
                    PatternExpr::And(parts)
                } else {
                    PatternExpr::Or(parts)
                })
            }
            "ITER" => {
                self.expect(&Tok::LParen)?;
                let leaf = self.leaf()?;
                self.expect(&Tok::Comma)?;
                let m = self.number()? as usize;
                let at_least = if self.peek() == Some(&Tok::Plus) {
                    self.expect(&Tok::Plus)?;
                    true
                } else {
                    false
                };
                self.expect(&Tok::RParen)?;
                Ok(PatternExpr::Iter { leaf, m, at_least })
            }
            "NOT" => Err(ParseError(
                "NOT is only allowed as the middle element of a ternary SEQ".into(),
            )),
            _ => {
                // `Type var` leaf: `head` is the type name.
                let var = self.ident()?;
                let etype = self.types.intern(&head);
                Ok(PatternExpr::Leaf(Leaf::new(etype, head, var)))
            }
        }
    }

    /// SEQ body; detects the ternary negated form `SEQ(a, NOT n, b)`.
    fn seq_body(&mut self) -> Result<PatternExpr, ParseError> {
        self.expect(&Tok::LParen)?;
        enum Item {
            Pos(PatternExpr),
            Neg(Leaf),
        }
        let mut items = Vec::new();
        loop {
            if self.at_keyword("NOT") {
                self.keyword("NOT")?;
                items.push(Item::Neg(self.leaf()?));
            } else {
                items.push(Item::Pos(self.expr()?));
            }
            if self.peek() == Some(&Tok::Comma) {
                self.expect(&Tok::Comma)?;
            } else {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        let has_neg = items.iter().any(|i| matches!(i, Item::Neg(_)));
        if !has_neg {
            let parts = items
                .into_iter()
                .map(|i| match i {
                    Item::Pos(p) => p,
                    Item::Neg(_) => unreachable!(),
                })
                .collect();
            return Ok(PatternExpr::Seq(parts));
        }
        // Negated sequence: exactly SEQ(leaf, NOT leaf, leaf).
        if items.len() != 3 {
            return Err(ParseError(
                "negation requires the ternary form SEQ(T1 a, NOT T2 n, T3 b)".into(),
            ));
        }
        let mut it = items.into_iter();
        let (first, absent, last) = match (it.next(), it.next(), it.next()) {
            (
                Some(Item::Pos(PatternExpr::Leaf(f))),
                Some(Item::Neg(a)),
                Some(Item::Pos(PatternExpr::Leaf(l))),
            ) => (f, a, l),
            _ => {
                return Err(ParseError(
                    "negated sequence operands must be plain `Type var` leaves".into(),
                ))
            }
        };
        Ok(PatternExpr::NegSeq {
            first,
            absent,
            last,
        })
    }

    fn leaf(&mut self) -> Result<Leaf, ParseError> {
        let tname = self.ident()?;
        let var = self.ident()?;
        let etype = self.types.intern(&tname);
        Ok(Leaf::new(etype, tname, var))
    }

    fn where_clause(&mut self) -> Result<Vec<RawPredicate>, ParseError> {
        let mut preds = vec![self.comparison()?];
        while self.at_keyword("AND") {
            self.keyword("AND")?;
            preds.push(self.comparison()?);
        }
        Ok(preds)
    }

    fn comparison(&mut self) -> Result<RawPredicate, ParseError> {
        let lhs = self.operand()?;
        let op = match self.next()? {
            Tok::Cmp(op) => op,
            other => return Err(ParseError(format!("expected comparison, got {other:?}"))),
        };
        let rhs = self.operand()?;
        Ok(RawPredicate { lhs, op, rhs })
    }

    fn operand(&mut self) -> Result<RawOperand, ParseError> {
        match self.next()? {
            Tok::Number(n) => Ok(RawOperand::Const(n)),
            Tok::Ident(name) => {
                self.expect(&Tok::Dot)?;
                let attr_name = self.ident()?;
                let attr = Attr::parse(&attr_name.to_ascii_lowercase())
                    .ok_or_else(|| ParseError(format!("unknown attribute `{attr_name}`")))?;
                Ok(RawOperand::Var(name, attr))
            }
            other => Err(ParseError(format!("expected operand, got {other:?}"))),
        }
    }

    fn duration(&mut self) -> Result<Duration, ParseError> {
        let n = self.number()?;
        let unit = self.ident()?.to_ascii_uppercase();
        let ms = match unit.as_str() {
            "MS" | "MILLISECOND" | "MILLISECONDS" => 1.0,
            "SECOND" | "SECONDS" | "SEC" | "S" => 1_000.0,
            "MINUTE" | "MINUTES" | "MIN" | "M" => 60_000.0,
            "HOUR" | "HOURS" | "H" => 3_600_000.0,
            other => return Err(ParseError(format!("unknown time unit `{other}`"))),
        };
        Ok(Duration::from_millis((n * ms) as i64))
    }
}

fn attach_absent_filter(expr: &mut PatternExpr, name: &str, attr: Attr, op: CmpOp, c: f64) {
    match expr {
        PatternExpr::NegSeq { absent, .. } if absent.var_name == name => {
            absent
                .filters
                .push(crate::pattern::LocalFilter { attr, op, value: c });
        }
        PatternExpr::Seq(parts) | PatternExpr::And(parts) | PatternExpr::Or(parts) => {
            for p in parts {
                attach_absent_filter(p, name, attr, op, c);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternExpr;
    use asp::time::MINUTE_MS;

    fn parse_ok(s: &str) -> Pattern {
        let mut reg = TypeRegistry::new();
        parse(s, &mut reg).unwrap_or_else(|e| panic!("{e}: {s}"))
    }

    #[test]
    fn parses_paper_listing_2() {
        // The paper's running example (Listing 2).
        let p = parse_ok(
            "PATTERN SEQ(T1 e1, T2 e2, T3 e3)
             WHERE e1.value <= e2.value AND e3.value <= 10
             WITHIN 4 MINUTES",
        );
        assert!(matches!(&p.expr, PatternExpr::Seq(parts) if parts.len() == 3));
        assert_eq!(p.predicates.len(), 2);
        assert_eq!(p.window.size.millis(), 4 * MINUTE_MS);
        assert_eq!(p.window.slide.millis(), MINUTE_MS, "default slide 1min");
    }

    #[test]
    fn parses_and_or_iter() {
        let p = parse_ok("PATTERN AND(Q a, V b) WITHIN 15 MINUTES");
        assert!(matches!(&p.expr, PatternExpr::And(_)));
        let p = parse_ok("PATTERN OR(Q a, V b) WITHIN 15 MINUTES");
        assert!(matches!(&p.expr, PatternExpr::Or(_)));
        let p = parse_ok("PATTERN ITER(V v, 5) WITHIN 15 MINUTES");
        assert!(matches!(
            &p.expr,
            PatternExpr::Iter {
                m: 5,
                at_least: false,
                ..
            }
        ));
        assert_eq!(p.positions(), 5);
        let p = parse_ok("PATTERN ITER(V v, 3+) WITHIN 15 MINUTES");
        assert!(matches!(
            &p.expr,
            PatternExpr::Iter {
                m: 3,
                at_least: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_negated_sequence_with_absent_filter() {
        let p = parse_ok(
            "PATTERN SEQ(Q a, NOT V n, PM10 b)
             WHERE a.value <= b.value AND n.value > 30
             WITHIN 15 MINUTES",
        );
        match &p.expr {
            PatternExpr::NegSeq { absent, .. } => {
                assert_eq!(absent.filters.len(), 1, "n.value > 30 became a leaf filter");
                assert_eq!(absent.filters[0].value, 30.0);
            }
            other => panic!("expected NSEQ, got {other:?}"),
        }
        assert_eq!(
            p.predicates.len(),
            1,
            "only the a–b predicate is positional"
        );
    }

    #[test]
    fn nested_structures_parse() {
        let p = parse_ok("PATTERN SEQ(Q a, AND(V b, PM10 c)) WITHIN 10 MINUTES");
        assert_eq!(p.positions(), 3);
        let p = parse_ok("PATTERN OR(SEQ(Q a, V b), SEQ(PM10 c, PM25 d)) WITHIN 10 MINUTES");
        assert_eq!(p.positions(), 4);
    }

    #[test]
    fn slide_and_units() {
        let p = parse_ok("PATTERN AND(Q a, V b) WITHIN 90 SECONDS SLIDE 500 MS");
        assert_eq!(p.window.size.millis(), 90_000);
        assert_eq!(p.window.slide.millis(), 500);
        let p = parse_ok("PATTERN AND(Q a, V b) WITHIN 2 HOURS");
        assert_eq!(p.window.size.millis(), 2 * 3_600_000);
    }

    #[test]
    fn invalid_slide_is_rejected_at_parse_time() {
        let mut reg = TypeRegistry::new();
        let err = parse(
            "PATTERN SEQ(Q a, V b) WITHIN 4 MINUTES SLIDE 8 MINUTES",
            &mut reg,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("SLIDE"), "{err}");
        // Sub-minute windows clamp the default 1-minute slide instead of
        // panicking downstream.
        let p = parse("PATTERN SEQ(Q a, V b) WITHIN 30 SECONDS", &mut reg).unwrap();
        assert_eq!(p.window.slide, p.window.size);
        p.window.assigner(); // must not panic
    }

    #[test]
    fn return_star_is_accepted() {
        parse_ok("PATTERN AND(Q a, V b) WITHIN 15 MINUTES RETURN *");
    }

    #[test]
    fn equality_predicate_enables_o3() {
        let p = parse_ok("PATTERN SEQ(Q a, V b) WHERE a.id == b.id WITHIN 15 MINUTES");
        assert_eq!(p.equi_keys().len(), 1);
    }

    #[test]
    fn constant_on_left_flips_for_absent_filter() {
        let p = parse_ok("PATTERN SEQ(Q a, NOT V n, PM10 b) WHERE 30 < n.value WITHIN 15 MINUTES");
        match &p.expr {
            PatternExpr::NegSeq { absent, .. } => {
                assert_eq!(absent.filters[0].op, CmpOp::Gt);
                assert_eq!(absent.filters[0].value, 30.0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn errors_are_informative() {
        let mut reg = TypeRegistry::new();
        let cases = [
            ("SEQ(Q a, V b) WITHIN 4 MINUTES", "PATTERN"),
            ("PATTERN SEQ(Q a, V b)", "unexpected end of input"),
            (
                "PATTERN SEQ(Q a, V b) WITHIN 4 FORTNIGHTS",
                "unknown time unit",
            ),
            (
                "PATTERN SEQ(Q a, V a) WITHIN 4 MINUTES",
                "duplicate variable",
            ),
            (
                "PATTERN SEQ(Q a, V b) WHERE c.value < 1 WITHIN 4 MINUTES",
                "unknown variable",
            ),
            (
                "PATTERN SEQ(Q a, NOT V n, PM10 b, T4 c) WITHIN 4 MINUTES",
                "ternary",
            ),
            (
                "PATTERN SEQ(Q a, V b) WHERE a.speed < 1 WITHIN 4 MINUTES",
                "unknown attribute",
            ),
            (
                "PATTERN SEQ(Q a, NOT V n, PM10 b) WHERE n.value < a.value WITHIN 4 MINUTES",
                "negated variable",
            ),
        ];
        for (input, needle) in cases {
            let err = parse(input, &mut reg).unwrap_err().to_string();
            assert!(err.contains(needle), "input `{input}`: got `{err}`");
        }
    }

    #[test]
    fn type_names_are_interned_once() {
        let mut reg = TypeRegistry::new();
        let p1 = parse("PATTERN SEQ(Q a, V b) WITHIN 4 MINUTES", &mut reg).unwrap();
        let p2 = parse("PATTERN AND(V x, Q y) WITHIN 4 MINUTES", &mut reg).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(p1.expr.input_types()[1], p2.expr.input_types()[0]);
    }
}

/// Render a pattern back to PSL text that [`parse`] accepts (round-trip
/// serialization). Leaf-local filters are lifted back into `WHERE` terms.
pub fn to_psl(pattern: &Pattern) -> String {
    use std::fmt::Write;
    let mut out = String::from("PATTERN ");
    render_expr(&pattern.expr, &mut out);
    let mut terms: Vec<String> = pattern
        .predicates
        .iter()
        .map(|p| render_pred(p, pattern))
        .collect();
    for leaf in pattern.expr.leaves() {
        for f in &leaf.filters {
            terms.push(format!("{}.{} {} {}", leaf.var_name, f.attr, f.op, f.value));
        }
    }
    if !terms.is_empty() {
        let _ = write!(out, "\nWHERE {}", terms.join(" AND "));
    }
    let _ = write!(out, "\nWITHIN {} MS", pattern.window.size.millis());
    let _ = write!(out, " SLIDE {} MS", pattern.window.slide.millis());
    out
}

fn render_expr(expr: &PatternExpr, out: &mut String) {
    use std::fmt::Write;
    match expr {
        PatternExpr::Leaf(l) => {
            let _ = write!(out, "{} {}", l.type_name, l.var_name);
        }
        PatternExpr::Seq(parts) | PatternExpr::And(parts) | PatternExpr::Or(parts) => {
            let kw = match expr {
                PatternExpr::Seq(_) => "SEQ",
                PatternExpr::And(_) => "AND",
                _ => "OR",
            };
            let _ = write!(out, "{kw}(");
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(p, out);
            }
            out.push(')');
        }
        PatternExpr::Iter { leaf, m, at_least } => {
            let _ = write!(
                out,
                "ITER({} {}, {}{})",
                leaf.type_name,
                leaf.var_name,
                m,
                if *at_least { "+" } else { "" }
            );
        }
        PatternExpr::NegSeq {
            first,
            absent,
            last,
        } => {
            let _ = write!(
                out,
                "SEQ({} {}, NOT {} {}, {} {})",
                first.type_name,
                first.var_name,
                absent.type_name,
                absent.var_name,
                last.type_name,
                last.var_name
            );
        }
    }
}

fn render_pred(p: &Predicate, pattern: &Pattern) -> String {
    use crate::predicate::Expr as PExpr;
    let name_of = |v: usize| {
        pattern
            .expr
            .leaves()
            .iter()
            .find(|l| l.var == v)
            .map(|l| l.var_name.clone())
            .unwrap_or_else(|| format!("e{}", v + 1))
    };
    let side = |e: &PExpr| match e {
        PExpr::Var(v, a) => format!("{}.{}", name_of(*v), a),
        PExpr::Const(c) => format!("{c}"),
    };
    format!("{} {} {}", side(&p.lhs), p.op, side(&p.rhs))
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;
    use crate::pattern::{builders, Leaf, WindowSpec};
    use crate::predicate::Predicate;
    use asp::event::{Attr, EventType};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);
    const PM: EventType = EventType(2);

    fn registry() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        for n in ["Q", "V", "PM10"] {
            r.intern(n);
        }
        r
    }

    fn round_trip(p: &Pattern) -> Pattern {
        let text = to_psl(p);
        let mut reg = registry();
        parse(&text, &mut reg).unwrap_or_else(|e| panic!("{e}\n--- serialized:\n{text}"))
    }

    fn pred_strings(p: &Pattern) -> Vec<String> {
        let mut v: Vec<String> = p.predicates.iter().map(|x| render_pred(x, p)).collect();
        for leaf in p.expr.leaves() {
            for f in &leaf.filters {
                v.push(format!("{}.{} {} {}", leaf.var_name, f.attr, f.op, f.value));
            }
        }
        v.sort();
        v
    }

    fn assert_round_trips(p: &Pattern) {
        let q = round_trip(p);
        assert_eq!(p.window, q.window, "window survives");
        assert_eq!(p.positions(), q.positions(), "positions survive");
        assert_eq!(pred_strings(p), pred_strings(&q), "predicates survive");
        // Idempotence: serializing the re-parse yields identical text.
        assert_eq!(to_psl(p), to_psl(&q));
    }

    #[test]
    fn seq_with_predicates_round_trips() {
        assert_round_trips(&builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM10")],
            WindowSpec::minutes(15),
            vec![
                Predicate::cross(0, Attr::Value, crate::predicate::CmpOp::Le, 1, Attr::Value),
                Predicate::threshold(2, Attr::Value, crate::predicate::CmpOp::Le, 10.0),
                Predicate::same_id(0, 1),
            ],
        ));
    }

    #[test]
    fn and_or_round_trip() {
        assert_round_trips(&builders::and(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(3),
            vec![],
        ));
        assert_round_trips(&builders::or(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(3)));
    }

    #[test]
    fn iter_and_kleene_round_trip() {
        assert_round_trips(&builders::iter(V, "V", 4, WindowSpec::minutes(9), vec![]));
        assert_round_trips(&builders::kleene_plus(V, "V", 3, WindowSpec::minutes(9)));
    }

    #[test]
    fn nseq_with_absent_filter_round_trips() {
        assert_round_trips(&builders::nseq(
            (Q, "Q"),
            Leaf::new(V, "V", "n").with_filter(Attr::Value, crate::predicate::CmpOp::Gt, 30.0),
            (PM, "PM10"),
            WindowSpec::minutes(7),
            vec![],
        ));
    }

    #[test]
    fn custom_slide_round_trips() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(8).with_slide(asp::time::Duration::from_millis(30_000)),
            vec![],
        );
        assert_round_trips(&p);
    }

    #[test]
    fn nested_structures_round_trip() {
        use crate::pattern::Pattern as P;
        let expr = PatternExpr::Seq(vec![
            PatternExpr::Leaf(Leaf::new(Q, "Q", "a")),
            PatternExpr::And(vec![
                PatternExpr::Leaf(Leaf::new(V, "V", "b")),
                PatternExpr::Leaf(Leaf::new(PM, "PM10", "c")),
            ]),
        ]);
        assert_round_trips(&P::new("n", expr, WindowSpec::minutes(5), vec![]).unwrap());
    }
}
