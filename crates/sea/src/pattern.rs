//! The SEA pattern model (paper Section 3).
//!
//! A [`Pattern`] is a composition of the SEA operators — sequence,
//! conjunction, disjunction, iteration, negated sequence — over typed event
//! leaves, plus a mandatory window constraint (`WITHIN`) and a set of
//! `WHERE` predicates. Each event-binding position in the flattened pattern
//! receives a *variable id*; predicates reference positions, which is what
//! lets the oracle, the NFA engine, and the ASP mapping evaluate identical
//! semantics.

use std::fmt;

use asp::event::{Attr, EventType};
use asp::time::Duration;
use asp::window::SlidingWindows;

use crate::predicate::{CmpOp, Predicate, VarId};

/// A typed event leaf `T e` of the pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaf {
    pub etype: EventType,
    /// Human-readable type name ("Q", "PM10", …) for plans and printing.
    pub type_name: String,
    /// Variable name from the pattern text ("e1", "v", …).
    pub var_name: String,
    /// Position in the flattened pattern; assigned by [`Pattern::new`].
    pub var: VarId,
    /// Leaf-local threshold filters (used for the negated leaf, which has
    /// no output position; for bound leaves the planner also pushes
    /// single-variable `WHERE` terms down to the leaf).
    pub filters: Vec<LocalFilter>,
}

impl Leaf {
    pub fn new(
        etype: EventType,
        type_name: impl Into<String>,
        var_name: impl Into<String>,
    ) -> Self {
        Leaf {
            etype,
            type_name: type_name.into(),
            var_name: var_name.into(),
            var: usize::MAX,
            filters: Vec::new(),
        }
    }

    pub fn with_filter(mut self, attr: Attr, op: CmpOp, value: f64) -> Self {
        self.filters.push(LocalFilter { attr, op, value });
        self
    }

    /// Does `event` satisfy the leaf's type and local filters?
    pub fn accepts(&self, e: &asp::event::Event) -> bool {
        e.etype == self.etype
            && self
                .filters
                .iter()
                .all(|f| f.op.apply(e.attr(f.attr), f.value))
    }
}

/// A per-event threshold attached directly to a leaf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalFilter {
    pub attr: Attr,
    pub op: CmpOp,
    pub value: f64,
}

impl fmt::Display for LocalFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{} {} {}", self.attr, self.op, self.value)
    }
}

/// The SEA operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternExpr {
    /// A single typed event occurrence.
    Leaf(Leaf),
    /// `SEQ(p1, …, pn)`: temporally ordered occurrence (Eq. 10); nested
    /// sequences are associative.
    Seq(Vec<PatternExpr>),
    /// `AND(p1, …, pn)`: joint occurrence within the window (Eq. 9);
    /// associative and commutative.
    And(Vec<PatternExpr>),
    /// `OR(p1, …, pn)`: either occurrence (Eq. 11).
    Or(Vec<PatternExpr>),
    /// `ITER_m(T)`: exactly `m` occurrences in ts order (Eq. 12), or the
    /// Kleene+ variant `≥ m` when `at_least` (the O2 extension of
    /// Section 4.3.2, evaluated count-based under skip-till-any-match).
    Iter {
        leaf: Leaf,
        m: usize,
        at_least: bool,
    },
    /// `SEQ(T1, ¬T2, T3)`: the negated sequence (Eq. 14). Only `first` and
    /// `last` bind output positions; `absent` constrains the gap.
    NegSeq {
        first: Leaf,
        absent: Leaf,
        last: Leaf,
    },
}

impl PatternExpr {
    /// Flatten directly nested same-operator nodes
    /// (`SEQ(T1, SEQ(T2, T3)) → SEQ(T1, T2, T3)`, Section 3.2 syntax rules;
    /// likewise for `AND` and `OR`).
    pub fn simplify(self) -> PatternExpr {
        fn flatten(
            parts: Vec<PatternExpr>,
            is_same: fn(&PatternExpr) -> Option<&Vec<PatternExpr>>,
        ) -> Vec<PatternExpr> {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                let p = p.simplify();
                match is_same(&p) {
                    Some(_) => {
                        if let PatternExpr::Seq(inner)
                        | PatternExpr::And(inner)
                        | PatternExpr::Or(inner) = p
                        {
                            out.extend(inner);
                        }
                    }
                    None => out.push(p),
                }
            }
            out
        }
        match self {
            PatternExpr::Seq(parts) => PatternExpr::Seq(flatten(parts, |p| match p {
                PatternExpr::Seq(v) => Some(v),
                _ => None,
            })),
            PatternExpr::And(parts) => PatternExpr::And(flatten(parts, |p| match p {
                PatternExpr::And(v) => Some(v),
                _ => None,
            })),
            PatternExpr::Or(parts) => PatternExpr::Or(flatten(parts, |p| match p {
                PatternExpr::Or(v) => Some(v),
                _ => None,
            })),
            other => other,
        }
    }

    /// Number of output positions this sub-pattern binds.
    pub fn positions(&self) -> usize {
        match self {
            PatternExpr::Leaf(_) => 1,
            PatternExpr::Seq(parts) | PatternExpr::And(parts) => {
                parts.iter().map(PatternExpr::positions).sum()
            }
            // A disjunction match binds one branch; positions are reserved
            // for every branch so predicates can reference any of them.
            PatternExpr::Or(parts) => parts.iter().map(PatternExpr::positions).sum(),
            PatternExpr::Iter { m, .. } => *m,
            PatternExpr::NegSeq { .. } => 2,
        }
    }

    pub(crate) fn assign_vars(&mut self, next: &mut VarId) {
        match self {
            PatternExpr::Leaf(leaf) => {
                leaf.var = *next;
                *next += 1;
            }
            PatternExpr::Seq(parts) | PatternExpr::And(parts) | PatternExpr::Or(parts) => {
                for p in parts {
                    p.assign_vars(next);
                }
            }
            PatternExpr::Iter { leaf, m, .. } => {
                leaf.var = *next;
                *next += *m;
            }
            PatternExpr::NegSeq {
                first,
                absent,
                last,
            } => {
                first.var = *next;
                *next += 1;
                last.var = *next;
                *next += 1;
                // The absent leaf binds no output position.
                absent.var = usize::MAX;
            }
        }
    }

    /// All leaves in textual order (including negated/iterated ones).
    pub fn leaves(&self) -> Vec<&Leaf> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Leaf>) {
        match self {
            PatternExpr::Leaf(l) => out.push(l),
            PatternExpr::Seq(parts) | PatternExpr::And(parts) | PatternExpr::Or(parts) => {
                for p in parts {
                    p.collect_leaves(out);
                }
            }
            PatternExpr::Iter { leaf, .. } => out.push(leaf),
            PatternExpr::NegSeq {
                first,
                absent,
                last,
            } => {
                out.push(first);
                out.push(absent);
                out.push(last);
            }
        }
    }

    /// Event types consumed by this pattern (with duplicates).
    pub fn input_types(&self) -> Vec<EventType> {
        self.leaves().iter().map(|l| l.etype).collect()
    }

    fn op_name(&self) -> &'static str {
        match self {
            PatternExpr::Leaf(_) => "LEAF",
            PatternExpr::Seq(_) => "SEQ",
            PatternExpr::And(_) => "AND",
            PatternExpr::Or(_) => "OR",
            PatternExpr::Iter { .. } => "ITER",
            PatternExpr::NegSeq { .. } => "NSEQ",
        }
    }
}

impl fmt::Display for PatternExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternExpr::Leaf(l) => write!(f, "{} {}", l.type_name, l.var_name),
            PatternExpr::Seq(parts) | PatternExpr::And(parts) | PatternExpr::Or(parts) => {
                write!(f, "{}(", self.op_name())?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            PatternExpr::Iter { leaf, m, at_least } => write!(
                f,
                "ITER{}{}({} {})",
                m,
                if *at_least { "+" } else { "" },
                leaf.type_name,
                leaf.var_name
            ),
            PatternExpr::NegSeq {
                first,
                absent,
                last,
            } => write!(
                f,
                "SEQ({} {}, ¬{} {}, {} {})",
                first.type_name,
                first.var_name,
                absent.type_name,
                absent.var_name,
                last.type_name,
                last.var_name
            ),
        }
    }
}

/// The window constraint `WITHIN (W, s)` of Section 3.1.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    pub size: Duration,
    pub slide: Duration,
}

impl WindowSpec {
    /// Window of `W` minutes with the paper's default slide of one minute
    /// (slide ≤ the minimum inter-arrival of minute-granularity sensors,
    /// per Theorem 2).
    pub fn minutes(w: i64) -> Self {
        WindowSpec {
            size: Duration::from_minutes(w),
            slide: Duration::from_minutes(1),
        }
    }

    pub fn with_slide(mut self, slide: Duration) -> Self {
        self.slide = slide;
        self
    }

    pub fn assigner(&self) -> SlidingWindows {
        SlidingWindows::new(self.size, self.slide)
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WITHIN ({}, {})", self.size, self.slide)
    }
}

/// Errors raised by [`Pattern::new`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// A predicate references a position the pattern does not bind.
    UnknownVariable { var: VarId, positions: usize },
    /// A predicate spans two branches of the same disjunction — no match
    /// binds both, so it could never hold.
    PredicateAcrossDisjunction(String),
    /// `ITER` with m = 0.
    EmptyIteration,
    /// An operator with fewer than the required operands.
    Arity {
        op: &'static str,
        got: usize,
        need: usize,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::UnknownVariable { var, positions } => {
                write!(
                    f,
                    "predicate references e{} but pattern binds {positions} positions",
                    var + 1
                )
            }
            PatternError::PredicateAcrossDisjunction(p) => {
                write!(f, "predicate `{p}` spans disjunction branches")
            }
            PatternError::EmptyIteration => write!(f, "ITER requires m > 0"),
            PatternError::Arity { op, got, need } => {
                write!(f, "{op} needs at least {need} operands, got {got}")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A complete, validated pattern: operator tree + window + predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    pub name: String,
    pub expr: PatternExpr,
    pub window: WindowSpec,
    /// Positional predicates (`WHERE` clause).
    pub predicates: Vec<Predicate>,
    positions: usize,
}

impl Pattern {
    /// Simplify, assign variable positions, and validate.
    pub fn new(
        name: impl Into<String>,
        expr: PatternExpr,
        window: WindowSpec,
        predicates: Vec<Predicate>,
    ) -> Result<Pattern, PatternError> {
        let mut expr = expr.simplify();
        Self::check_arity(&expr)?;
        let mut next = 0;
        expr.assign_vars(&mut next);
        let positions = next;
        for p in &predicates {
            for v in p.vars() {
                if v >= positions {
                    return Err(PatternError::UnknownVariable { var: v, positions });
                }
            }
        }
        Self::check_disjunction_predicates(&expr, &predicates)?;
        Ok(Pattern {
            name: name.into(),
            expr,
            window,
            predicates,
            positions,
        })
    }

    fn check_arity(expr: &PatternExpr) -> Result<(), PatternError> {
        match expr {
            PatternExpr::Leaf(_) => Ok(()),
            PatternExpr::Seq(p) | PatternExpr::And(p) | PatternExpr::Or(p) => {
                if p.len() < 2 {
                    return Err(PatternError::Arity {
                        op: expr.op_name(),
                        got: p.len(),
                        need: 2,
                    });
                }
                p.iter().try_for_each(Self::check_arity)
            }
            PatternExpr::Iter { m, .. } => {
                if *m == 0 {
                    Err(PatternError::EmptyIteration)
                } else {
                    Ok(())
                }
            }
            PatternExpr::NegSeq { .. } => Ok(()),
        }
    }

    fn check_disjunction_predicates(
        expr: &PatternExpr,
        predicates: &[Predicate],
    ) -> Result<(), PatternError> {
        // Collect the position ranges of each disjunction branch; a
        // predicate whose two variables land in different branches of the
        // same OR can never be satisfied.
        fn branches(expr: &PatternExpr, lo: VarId, out: &mut Vec<Vec<(VarId, VarId)>>) -> VarId {
            match expr {
                PatternExpr::Leaf(_) => lo + 1,
                PatternExpr::Seq(parts) | PatternExpr::And(parts) => {
                    let mut cur = lo;
                    for p in parts {
                        cur = branches(p, cur, out);
                    }
                    cur
                }
                PatternExpr::Or(parts) => {
                    let mut ranges = Vec::new();
                    let mut cur = lo;
                    for p in parts {
                        let start = cur;
                        cur = branches(p, cur, out);
                        ranges.push((start, cur));
                    }
                    out.push(ranges);
                    cur
                }
                PatternExpr::Iter { m, .. } => lo + m,
                PatternExpr::NegSeq { .. } => lo + 2,
            }
        }
        let mut or_groups = Vec::new();
        branches(expr, 0, &mut or_groups);
        for p in predicates {
            let vars = p.vars();
            if vars.len() < 2 {
                continue;
            }
            for group in &or_groups {
                let branch_of = |v: VarId| group.iter().position(|(a, b)| v >= *a && v < *b);
                let bs: Vec<_> = vars.iter().filter_map(|v| branch_of(*v)).collect();
                if bs.len() >= 2 && bs.windows(2).any(|w| w[0] != w[1]) {
                    return Err(PatternError::PredicateAcrossDisjunction(p.to_string()));
                }
            }
        }
        Ok(())
    }

    /// Number of bound output positions.
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// Predicates that reference only `var` (pushdown candidates).
    pub fn single_var_predicates(&self, var: VarId) -> Vec<Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.vars() == vec![var])
            .copied()
            .collect()
    }

    /// Cross-variable predicates (≥ 2 distinct variables).
    pub fn cross_predicates(&self) -> Vec<Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.vars().len() >= 2)
            .copied()
            .collect()
    }

    /// The equi-key predicate pairs (O3 opportunities).
    pub fn equi_keys(&self) -> Vec<Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.is_equi_key())
            .copied()
            .collect()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PATTERN {}", self.expr)?;
        if !self.predicates.is_empty() {
            write!(f, "WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{p}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{}", self.window)
    }
}

/// Convenience constructors used across tests, examples, and benches.
pub mod builders {
    use super::*;

    /// `SEQ(T1 e1, …, Tn en)` over the given types.
    pub fn seq(
        types: &[(EventType, &str)],
        window: WindowSpec,
        predicates: Vec<Predicate>,
    ) -> Pattern {
        let parts: Vec<PatternExpr> = types
            .iter()
            .enumerate()
            .map(|(i, (t, n))| PatternExpr::Leaf(Leaf::new(*t, *n, format!("e{}", i + 1))))
            .collect();
        Pattern::new("SEQ", PatternExpr::Seq(parts), window, predicates).expect("valid seq")
    }

    /// `AND(T1 e1, …, Tn en)`.
    pub fn and(
        types: &[(EventType, &str)],
        window: WindowSpec,
        predicates: Vec<Predicate>,
    ) -> Pattern {
        let parts: Vec<PatternExpr> = types
            .iter()
            .enumerate()
            .map(|(i, (t, n))| PatternExpr::Leaf(Leaf::new(*t, *n, format!("e{}", i + 1))))
            .collect();
        Pattern::new("AND", PatternExpr::And(parts), window, predicates).expect("valid and")
    }

    /// `OR(T1 e1, …, Tn en)`.
    pub fn or(types: &[(EventType, &str)], window: WindowSpec) -> Pattern {
        let parts: Vec<PatternExpr> = types
            .iter()
            .enumerate()
            .map(|(i, (t, n))| PatternExpr::Leaf(Leaf::new(*t, *n, format!("e{}", i + 1))))
            .collect();
        Pattern::new("OR", PatternExpr::Or(parts), window, Vec::new()).expect("valid or")
    }

    /// `ITER_m(T)` with optional predicates over positions `0..m`.
    pub fn iter(
        etype: EventType,
        name: &str,
        m: usize,
        window: WindowSpec,
        predicates: Vec<Predicate>,
    ) -> Pattern {
        Pattern::new(
            format!("ITER{m}"),
            PatternExpr::Iter {
                leaf: Leaf::new(etype, name, "v"),
                m,
                at_least: false,
            },
            window,
            predicates,
        )
        .expect("valid iter")
    }

    /// Kleene+ `ITER_{≥m}(T)` (O2 extension).
    pub fn kleene_plus(etype: EventType, name: &str, m: usize, window: WindowSpec) -> Pattern {
        Pattern::new(
            format!("ITER{m}+"),
            PatternExpr::Iter {
                leaf: Leaf::new(etype, name, "v"),
                m,
                at_least: true,
            },
            window,
            Vec::new(),
        )
        .expect("valid kleene")
    }

    /// `SEQ(T1 e1, ¬T2 n, T3 e2)` with optional filters on the absent leaf.
    pub fn nseq(
        first: (EventType, &str),
        absent: Leaf,
        last: (EventType, &str),
        window: WindowSpec,
        predicates: Vec<Predicate>,
    ) -> Pattern {
        Pattern::new(
            "NSEQ",
            PatternExpr::NegSeq {
                first: Leaf::new(first.0, first.1, "e1"),
                absent,
                last: Leaf::new(last.0, last.1, "e2"),
            },
            window,
            predicates,
        )
        .expect("valid nseq")
    }
}

#[cfg(test)]
mod tests {
    use super::builders::*;
    use super::*;
    use asp::event::Event;
    use asp::time::Timestamp;

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);
    const PM: EventType = EventType(2);

    #[test]
    fn nested_seq_simplifies() {
        let inner = PatternExpr::Seq(vec![
            PatternExpr::Leaf(Leaf::new(V, "V", "b")),
            PatternExpr::Leaf(Leaf::new(PM, "PM", "c")),
        ]);
        let outer = PatternExpr::Seq(vec![PatternExpr::Leaf(Leaf::new(Q, "Q", "a")), inner]);
        let p = Pattern::new("n", outer, WindowSpec::minutes(15), vec![]).unwrap();
        match &p.expr {
            PatternExpr::Seq(parts) => assert_eq!(parts.len(), 3, "flattened"),
            other => panic!("expected SEQ, got {other:?}"),
        }
        assert_eq!(p.positions(), 3);
    }

    #[test]
    fn variable_assignment_is_textual_order() {
        let p = seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(15),
            vec![],
        );
        let vars: Vec<_> = p.expr.leaves().iter().map(|l| l.var).collect();
        assert_eq!(vars, vec![0, 1, 2]);
    }

    #[test]
    fn iter_reserves_m_positions() {
        let p = iter(V, "V", 4, WindowSpec::minutes(15), vec![]);
        assert_eq!(p.positions(), 4);
        // A pairwise predicate on position 3 is valid; on 4 it is not.
        let ok = Predicate::cross(2, Attr::Value, CmpOp::Lt, 3, Attr::Value);
        assert!(Pattern::new("i", p.expr.clone(), p.window, vec![ok]).is_ok());
        let bad = Predicate::threshold(4, Attr::Value, CmpOp::Lt, 1.0);
        assert_eq!(
            Pattern::new("i", p.expr, p.window, vec![bad]).unwrap_err(),
            PatternError::UnknownVariable {
                var: 4,
                positions: 4
            }
        );
    }

    #[test]
    fn nseq_binds_two_positions_absent_none() {
        let p = nseq(
            (Q, "Q"),
            Leaf::new(V, "V", "n").with_filter(Attr::Value, CmpOp::Gt, 5.0),
            (PM, "PM"),
            WindowSpec::minutes(15),
            vec![],
        );
        assert_eq!(p.positions(), 2);
        let leaves = p.expr.leaves();
        assert_eq!(leaves[0].var, 0);
        assert_eq!(leaves[1].var, usize::MAX, "absent leaf unbound");
        assert_eq!(leaves[2].var, 1);
    }

    #[test]
    fn absent_leaf_filters_apply() {
        let l = Leaf::new(V, "V", "n").with_filter(Attr::Value, CmpOp::Gt, 5.0);
        let hit = Event::new(V, 1, Timestamp(0), 6.0);
        let miss_val = Event::new(V, 1, Timestamp(0), 5.0);
        let miss_type = Event::new(Q, 1, Timestamp(0), 9.0);
        assert!(l.accepts(&hit));
        assert!(!l.accepts(&miss_val));
        assert!(!l.accepts(&miss_type));
    }

    #[test]
    fn predicate_across_disjunction_is_rejected() {
        let expr = PatternExpr::Or(vec![
            PatternExpr::Leaf(Leaf::new(Q, "Q", "a")),
            PatternExpr::Leaf(Leaf::new(V, "V", "b")),
        ]);
        let bad = Predicate::cross(0, Attr::Value, CmpOp::Lt, 1, Attr::Value);
        assert!(matches!(
            Pattern::new("o", expr, WindowSpec::minutes(5), vec![bad]),
            Err(PatternError::PredicateAcrossDisjunction(_))
        ));
    }

    #[test]
    fn seq_containing_or_allows_cross_predicate_within_branch() {
        // SEQ(Q a, OR(V b, PM c)): predicate a–b is fine (different OR
        // groups don't conflict).
        let expr = PatternExpr::Seq(vec![
            PatternExpr::Leaf(Leaf::new(Q, "Q", "a")),
            PatternExpr::Or(vec![
                PatternExpr::Leaf(Leaf::new(V, "V", "b")),
                PatternExpr::Leaf(Leaf::new(PM, "PM", "c")),
            ]),
        ]);
        let ok = Predicate::cross(0, Attr::Value, CmpOp::Lt, 1, Attr::Value);
        assert!(Pattern::new("m", expr.clone(), WindowSpec::minutes(5), vec![ok]).is_ok());
        let bad = Predicate::cross(1, Attr::Value, CmpOp::Lt, 2, Attr::Value);
        assert!(Pattern::new("m", expr, WindowSpec::minutes(5), vec![bad]).is_err());
    }

    #[test]
    fn arity_validation() {
        let one = PatternExpr::Seq(vec![PatternExpr::Leaf(Leaf::new(Q, "Q", "a"))]);
        assert!(matches!(
            Pattern::new("s", one, WindowSpec::minutes(5), vec![]),
            Err(PatternError::Arity { .. })
        ));
        let zero_iter = PatternExpr::Iter {
            leaf: Leaf::new(Q, "Q", "a"),
            m: 0,
            at_least: false,
        };
        assert_eq!(
            Pattern::new("i", zero_iter, WindowSpec::minutes(5), vec![]).unwrap_err(),
            PatternError::EmptyIteration
        );
    }

    #[test]
    fn display_round_trip_shape() {
        let p = seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(4),
            vec![Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value)],
        );
        let s = p.to_string();
        assert!(s.contains("PATTERN SEQ(Q e1, V e2)"), "{s}");
        assert!(s.contains("WHERE e1.value <= e2.value"), "{s}");
        assert!(s.contains("WITHIN (4min, 1min)"), "{s}");
    }

    #[test]
    fn equi_key_extraction() {
        let p = seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(15),
            vec![
                Predicate::same_id(0, 1),
                Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value),
            ],
        );
        assert_eq!(p.equi_keys().len(), 1);
        assert_eq!(p.cross_predicates().len(), 2);
        assert!(p.single_var_predicates(0).is_empty());
    }
}
