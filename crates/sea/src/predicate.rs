//! Predicate expressions over pattern variables.
//!
//! The `WHERE` clause of a pattern (paper Listing 1) constrains attribute
//! values of the events bound to pattern variables — per-event predicates
//! like `e3.value ≤ 10` and cross-event predicates like
//! `e1.value ≤ e2.value` or the O3 equi-key condition `e1.id = e2.id`.
//! Predicates are small interpretable trees so the oracle, the NFA engine,
//! and the ASP mapping all evaluate identical semantics.

use std::fmt;

use asp::event::{Attr, Event};

/// Index of a pattern variable (position in the flattened pattern).
pub type VarId = usize;

/// Comparison operators of the pattern language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    #[inline]
    pub fn apply(self, l: f64, r: f64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    pub fn parse(s: &str) -> Option<CmpOp> {
        match s {
            "<" => Some(CmpOp::Lt),
            "<=" => Some(CmpOp::Le),
            ">" => Some(CmpOp::Gt),
            ">=" => Some(CmpOp::Ge),
            "==" | "=" => Some(CmpOp::Eq),
            "!=" | "<>" => Some(CmpOp::Ne),
            _ => None,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A scalar expression: an attribute of a bound variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expr {
    Var(VarId, Attr),
    Const(f64),
}

impl Expr {
    /// Evaluate against the events bound so far; `None` if the referenced
    /// variable is not bound yet (NFA partial matches defer such checks).
    #[inline]
    pub fn eval(&self, binding: &[Event]) -> Option<f64> {
        match self {
            Expr::Var(v, a) => binding.get(*v).map(|e| e.attr(*a)),
            Expr::Const(c) => Some(*c),
        }
    }

    /// The variable this expression references, if any.
    pub fn var(&self) -> Option<VarId> {
        match self {
            Expr::Var(v, _) => Some(*v),
            Expr::Const(_) => None,
        }
    }
}

/// A single comparison `lhs op rhs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    pub lhs: Expr,
    pub op: CmpOp,
    pub rhs: Expr,
}

impl Predicate {
    pub fn new(lhs: Expr, op: CmpOp, rhs: Expr) -> Self {
        Predicate { lhs, op, rhs }
    }

    /// Per-event threshold predicate `var.attr op const`.
    pub fn threshold(var: VarId, attr: Attr, op: CmpOp, c: f64) -> Self {
        Predicate::new(Expr::Var(var, attr), op, Expr::Const(c))
    }

    /// Cross-event predicate `a.attr op b.attr`.
    pub fn cross(a: VarId, aa: Attr, op: CmpOp, b: VarId, ba: Attr) -> Self {
        Predicate::new(Expr::Var(a, aa), op, Expr::Var(b, ba))
    }

    /// The O3 equi-key condition `a.id = b.id`.
    pub fn same_id(a: VarId, b: VarId) -> Self {
        Predicate::cross(a, Attr::Id, CmpOp::Eq, b, Attr::Id)
    }

    /// Evaluate against a full binding (all variables bound).
    #[inline]
    pub fn eval(&self, binding: &[Event]) -> bool {
        match (self.lhs.eval(binding), self.rhs.eval(binding)) {
            (Some(l), Some(r)) => self.op.apply(l, r),
            _ => false,
        }
    }

    /// Evaluate against a partial binding: `true` when a referenced
    /// variable is still unbound (the check is deferred until it binds).
    #[inline]
    pub fn eval_partial(&self, binding: &[Event]) -> bool {
        match (self.lhs.eval(binding), self.rhs.eval(binding)) {
            (Some(l), Some(r)) => self.op.apply(l, r),
            _ => true,
        }
    }

    /// Evaluate against a sparse binding (positions may be unbound, e.g.
    /// non-taken disjunction branches). A predicate referencing an unbound
    /// variable is *vacuously true* — it constrains events that did not
    /// participate in this match.
    #[inline]
    pub fn eval_sparse(&self, binding: &[Option<Event>]) -> bool {
        let get = |e: &Expr| -> Result<f64, bool> {
            match e {
                Expr::Var(v, a) => match binding.get(*v) {
                    Some(Some(ev)) => Ok(ev.attr(*a)),
                    _ => Err(true), // unbound → vacuous
                },
                Expr::Const(c) => Ok(*c),
            }
        };
        match (get(&self.lhs), get(&self.rhs)) {
            (Ok(l), Ok(r)) => self.op.apply(l, r),
            _ => true,
        }
    }

    /// Variables referenced by this predicate (deduplicated, ≤ 2).
    pub fn vars(&self) -> Vec<VarId> {
        let mut v: Vec<VarId> = [self.lhs.var(), self.rhs.var()]
            .into_iter()
            .flatten()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The highest referenced variable, if any — the point at which the
    /// predicate becomes fully checkable in left-to-right binding order.
    pub fn max_var(&self) -> Option<VarId> {
        self.vars().into_iter().max()
    }

    /// Is this an equality between the `id` attributes of two distinct
    /// variables (the O3 partitioning opportunity)?
    pub fn is_equi_key(&self) -> bool {
        matches!(
            (self.lhs, self.op, self.rhs),
            (Expr::Var(a, Attr::Id), CmpOp::Eq, Expr::Var(b, Attr::Id)) if a != b
        )
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = |e: &Expr, f: &mut fmt::Formatter<'_>| -> fmt::Result {
            match e {
                Expr::Var(v, a) => write!(f, "e{}.{}", v + 1, a),
                Expr::Const(c) => write!(f, "{c}"),
            }
        };
        w(&self.lhs, f)?;
        write!(f, " {} ", self.op)?;
        w(&self.rhs, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::EventType;
    use asp::time::Timestamp;

    fn ev(v: f64, id: u32) -> Event {
        Event::new(EventType(0), id, Timestamp(0), v)
    }

    #[test]
    fn cmp_ops_cover_all_orderings() {
        assert!(CmpOp::Lt.apply(1.0, 2.0) && !CmpOp::Lt.apply(2.0, 2.0));
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(CmpOp::Gt.apply(3.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
        assert!(CmpOp::Eq.apply(2.0, 2.0) && !CmpOp::Eq.apply(2.0, 3.0));
        assert!(CmpOp::Ne.apply(2.0, 3.0));
    }

    #[test]
    fn cmp_parse_round_trips() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(CmpOp::parse(op.symbol()), Some(op));
        }
        assert_eq!(CmpOp::parse("="), Some(CmpOp::Eq));
        assert_eq!(CmpOp::parse("<>"), Some(CmpOp::Ne));
        assert_eq!(CmpOp::parse("~"), None);
    }

    #[test]
    fn threshold_and_cross_predicates() {
        let binding = [ev(5.0, 1), ev(8.0, 1)];
        assert!(Predicate::threshold(0, Attr::Value, CmpOp::Le, 5.0).eval(&binding));
        assert!(!Predicate::threshold(0, Attr::Value, CmpOp::Lt, 5.0).eval(&binding));
        assert!(Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value).eval(&binding));
        assert!(Predicate::same_id(0, 1).eval(&binding));
        let other = [ev(5.0, 1), ev(8.0, 2)];
        assert!(!Predicate::same_id(0, 1).eval(&other));
    }

    #[test]
    fn partial_eval_defers_unbound_vars() {
        let p = Predicate::cross(0, Attr::Value, CmpOp::Le, 2, Attr::Value);
        let partial = [ev(5.0, 1)];
        assert!(p.eval_partial(&partial), "var 2 unbound → deferred");
        assert!(!p.eval(&partial), "strict eval fails on unbound");
        let full = [ev(5.0, 1), ev(0.0, 1), ev(9.0, 1)];
        assert!(p.eval_partial(&full) && p.eval(&full));
    }

    #[test]
    fn equi_key_detection() {
        assert!(Predicate::same_id(0, 1).is_equi_key());
        assert!(!Predicate::cross(0, Attr::Value, CmpOp::Eq, 1, Attr::Value).is_equi_key());
        assert!(!Predicate::cross(0, Attr::Id, CmpOp::Eq, 0, Attr::Id).is_equi_key());
        assert!(!Predicate::threshold(0, Attr::Id, CmpOp::Eq, 5.0).is_equi_key());
    }

    #[test]
    fn vars_and_max_var() {
        let p = Predicate::cross(3, Attr::Value, CmpOp::Lt, 1, Attr::Value);
        assert_eq!(p.vars(), vec![1, 3]);
        assert_eq!(p.max_var(), Some(3));
        let c = Predicate::new(Expr::Const(1.0), CmpOp::Lt, Expr::Const(2.0));
        assert_eq!(c.max_var(), None);
    }

    #[test]
    fn display_is_one_based() {
        let p = Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value);
        assert_eq!(p.to_string(), "e1.value <= e2.value");
        let t = Predicate::threshold(2, Attr::Value, CmpOp::Le, 10.0);
        assert_eq!(t.to_string(), "e3.value <= 10");
    }
}
