//! Declared source schemas for typed plan checking.
//!
//! Every [`asp::event::Event`] physically carries the full fixed attribute
//! set ([`Attr`]): `value`, `ts`, `id`, `lat`, `lon`. Logically, however, a
//! source stream usually *populates* only a subset — a velocity sensor has
//! no meaningful `lat`/`lon`, an air-quality site no `value` semantics
//! beyond its measurement. A [`SchemaCatalog`] records, per event type,
//! which attributes the source actually declares, so the static
//! typechecker (`cep2asp::typecheck`) can reject a predicate that reads an
//! attribute the bound source never provides — at translate time instead
//! of as a silently-wrong runtime comparison against a default value.
//!
//! The catalog is *permissive by default*: an event type with no
//! declaration exposes every attribute (backwards compatible with
//! patterns written before schemas existed). Declaring a type narrows it.

use std::collections::HashMap;

use asp::event::{Attr, EventType};

/// The declared logical schema of one source stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSchema {
    /// The stream's event type.
    pub etype: EventType,
    /// Human-readable stream name (diagnostics).
    pub name: String,
    /// Attributes the source populates. `ts` and `id` are structural
    /// (every event carries them) and are always implicitly declared.
    pub attrs: Vec<Attr>,
}

impl SourceSchema {
    /// Does this schema declare `attr`? `ts` and `id` always hold.
    pub fn declares(&self, attr: Attr) -> bool {
        matches!(attr, Attr::Ts | Attr::Id) || self.attrs.contains(&attr)
    }
}

/// Per-type source schema declarations consulted by the typechecker.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemaCatalog {
    declared: HashMap<EventType, SourceSchema>,
}

impl SchemaCatalog {
    /// An empty (fully permissive) catalog: every type exposes every
    /// attribute until declared otherwise.
    pub fn new() -> Self {
        SchemaCatalog::default()
    }

    /// Declare (or replace) the schema of `etype`. Returns `self` for
    /// chaining.
    pub fn declare(
        &mut self,
        etype: EventType,
        name: impl Into<String>,
        attrs: &[Attr],
    ) -> &mut Self {
        self.declared.insert(
            etype,
            SourceSchema {
                etype,
                name: name.into(),
                attrs: attrs.to_vec(),
            },
        );
        self
    }

    /// The declared schema of `etype`, if any.
    pub fn get(&self, etype: EventType) -> Option<&SourceSchema> {
        self.declared.get(&etype)
    }

    /// Does `etype` declare `attr`? Undeclared types are permissive
    /// (`true` for every attribute); declared types narrow to their list
    /// plus the structural `ts`/`id`.
    pub fn declares(&self, etype: EventType, attr: Attr) -> bool {
        match self.declared.get(&etype) {
            Some(s) => s.declares(attr),
            None => true,
        }
    }

    /// Number of declared types.
    pub fn len(&self) -> usize {
        self.declared.len()
    }

    /// Is the catalog empty (fully permissive)?
    pub fn is_empty(&self) -> bool {
        self.declared.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undeclared_types_are_permissive() {
        let cat = SchemaCatalog::new();
        assert!(cat.is_empty());
        for attr in [Attr::Value, Attr::Ts, Attr::Id, Attr::Lat, Attr::Lon] {
            assert!(cat.declares(EventType(7), attr));
        }
    }

    #[test]
    fn declared_types_narrow_to_their_attrs() {
        let mut cat = SchemaCatalog::new();
        cat.declare(EventType(0), "V", &[Attr::Value]);
        assert!(cat.declares(EventType(0), Attr::Value));
        assert!(!cat.declares(EventType(0), Attr::Lat));
        assert!(
            cat.declares(EventType(0), Attr::Ts) && cat.declares(EventType(0), Attr::Id),
            "ts and id are structural"
        );
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get(EventType(0)).map(|s| s.name.as_str()), Some("V"));
    }

    #[test]
    fn redeclaring_replaces() {
        let mut cat = SchemaCatalog::new();
        cat.declare(EventType(0), "V", &[Attr::Value])
            .declare(EventType(0), "V2", &[Attr::Lat]);
        assert!(!cat.declares(EventType(0), Attr::Value));
        assert!(cat.declares(EventType(0), Attr::Lat));
    }
}
