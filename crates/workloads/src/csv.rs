//! CSV persistence for event streams.
//!
//! The paper's harness reads fixed time-frame extracts of the datasets
//! from CSV files with a simple source operator (Section 5.1.2); this
//! module provides the same interchange format:
//!
//! ```text
//! type,id,lat,lon,ts_ms,value
//! Q,17,50.113,8.672,540000,42.5
//! ```

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use asp::event::{Event, TypeRegistry};
use asp::time::Timestamp;

/// Write a stream to CSV, resolving type names via the registry.
pub fn write_stream(path: &Path, events: &[Event], reg: &TypeRegistry) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "type,id,lat,lon,ts_ms,value")?;
    for e in events {
        let tname = reg
            .name(e.etype)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unregistered type"))?;
        writeln!(
            w,
            "{},{},{},{},{},{}",
            tname,
            e.id,
            e.lat,
            e.lon,
            e.ts.millis(),
            e.value
        )?;
    }
    w.flush()
}

/// Read a stream from CSV, interning unknown type names.
pub fn read_stream(path: &Path, reg: &mut TypeRegistry) -> io::Result<Vec<Event>> {
    let r = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue; // header
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 6 {
            return Err(bad_line(lineno, "expected 6 fields"));
        }
        let etype = reg.intern(parts[0]);
        let parse = |i: usize| -> Result<f64, io::Error> {
            parts[i]
                .trim()
                .parse()
                .map_err(|_| bad_line(lineno, "numeric field"))
        };
        out.push(Event {
            etype,
            id: parse(1)? as u32,
            lat: parse(2)? as f32,
            lon: parse(3)? as f32,
            ts: Timestamp(parse(4)? as i64),
            value: parse(5)?,
        });
    }
    Ok(out)
}

fn bad_line(lineno: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("CSV line {}: bad {what}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_qnv, QnvConfig, ValueModel};
    use crate::types;

    #[test]
    fn round_trip_preserves_events() {
        let reg = types::registry();
        let w = generate_qnv(&QnvConfig {
            sensors: 3,
            minutes: 5,
            seed: 11,
            value_model: ValueModel::Uniform,
        });
        let dir = std::env::temp_dir().join("cep2asp_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.csv");
        write_stream(&path, w.stream(types::Q), &reg).unwrap();
        let mut reg2 = types::registry();
        let back = read_stream(&path, &mut reg2).unwrap();
        assert_eq!(back.len(), w.stream(types::Q).len());
        for (a, b) in back.iter().zip(w.stream(types::Q)) {
            assert_eq!(a.etype, b.etype);
            assert_eq!(a.id, b.id);
            assert_eq!(a.ts, b.ts);
            assert!((a.value - b.value).abs() < 1e-9);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let dir = std::env::temp_dir().join("cep2asp_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "type,id,lat,lon,ts_ms,value\nQ,1,2,3\n").unwrap();
        let mut reg = types::registry();
        let err = read_stream(&path, &mut reg).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unknown_types_are_interned_on_read() {
        let dir = std::env::temp_dir().join("cep2asp_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("new_type.csv");
        std::fs::write(&path, "type,id,lat,lon,ts_ms,value\nOzone,1,0,0,1000,5.5\n").unwrap();
        let mut reg = types::registry();
        let evs = read_stream(&path, &mut reg).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(reg.name(evs[0].etype), Some("Ozone"));
        std::fs::remove_file(path).ok();
    }
}
