//! Deterministic stream generators.
//!
//! Every sensor gets a stable pseudo-random phase inside its reporting
//! interval (so timestamps across sensors interleave instead of piling on
//! minute boundaries) and fixed coordinates inside a Hessen-like bounding
//! box. Values come from either a uniform distribution (exactly
//! calibratable filter selectivity) or a clamped random walk (realistic
//! autocorrelated series for the examples).

use std::collections::HashMap;

use asp::event::{Event, EventType};
use asp::time::{Timestamp, MINUTE_MS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::{HUM, PM10, PM25, Q, TEMP, V};

/// How sensor values evolve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ValueModel {
    /// `Uniform[0, 100)` i.i.d. — filter pass rates are exact quantiles.
    #[default]
    Uniform,
    /// Clamped random walk in `[0, 100]` with the given step bound —
    /// autocorrelated like real traffic/air series.
    RandomWalk { step: f64 },
}

/// A set of generated per-type streams, each sorted by timestamp.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    pub streams: HashMap<EventType, Vec<Event>>,
}

impl Workload {
    /// Total events across all streams.
    pub fn total_events(&self) -> usize {
        self.streams.values().map(Vec::len).sum()
    }

    /// Merge another workload's streams into this one (re-sorting).
    pub fn merge(&mut self, other: Workload) {
        for (t, mut evs) in other.streams {
            let entry = self.streams.entry(t).or_default();
            entry.append(&mut evs);
            entry.sort_by_key(|e| e.ts);
        }
    }

    /// A single stream (empty slice if the type was not generated).
    pub fn stream(&self, t: EventType) -> &[Event] {
        self.streams.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All events of all streams merged into one ts-sorted vector.
    pub fn merged(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self.streams.values().flatten().copied().collect();
        all.sort_by_key(|e| e.ts);
        all
    }

    /// Perturb every stream's *arrival* order: each event is delayed by a
    /// random amount up to `max_delay_ms` (timestamps are unchanged),
    /// simulating network reordering. Consumers must configure a source
    /// watermark lag ≥ `max_delay_ms` to avoid losing the stragglers.
    pub fn with_disorder(mut self, max_delay_ms: i64, seed: u64) -> Workload {
        assert!(max_delay_ms >= 0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15);
        for stream in self.streams.values_mut() {
            let mut keyed: Vec<(i64, Event)> = stream
                .iter()
                .map(|e| (e.ts.millis() + rng.gen_range(0..=max_delay_ms), *e))
                .collect();
            keyed.sort_by_key(|(arrival, e)| (*arrival, e.ts));
            *stream = keyed.into_iter().map(|(_, e)| e).collect();
        }
        self
    }
}

/// QnV traffic-data generator configuration.
#[derive(Debug, Clone)]
pub struct QnvConfig {
    /// Number of road-segment sensors (= distinct keys).
    pub sensors: u32,
    /// Simulated duration in minutes; each sensor reports once per minute.
    pub minutes: i64,
    pub seed: u64,
    pub value_model: ValueModel,
}

impl QnvConfig {
    /// A configuration sized to produce ~`total` events (half Q, half V).
    pub fn with_total_events(sensors: u32, total: usize, seed: u64) -> Self {
        let per_sensor_readings = (total / 2).max(1) / sensors.max(1) as usize;
        QnvConfig {
            sensors,
            minutes: per_sensor_readings.max(1) as i64,
            seed,
            value_model: ValueModel::Uniform,
        }
    }
}

/// Generate the QnV streams: per sensor, one (Q, V) reading pair per
/// minute, both events stamped with the reading's timestamp.
pub fn generate_qnv(cfg: &QnvConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut q = Vec::with_capacity((cfg.sensors as i64 * cfg.minutes) as usize);
    let mut v = Vec::with_capacity(q.capacity());
    let sensors: Vec<Sensor> = (0..cfg.sensors)
        .map(|id| Sensor::new(id, MINUTE_MS, &mut rng))
        .collect();
    let mut walks_q: Vec<f64> = sensors.iter().map(|_| rng.gen_range(0.0..100.0)).collect();
    let mut walks_v: Vec<f64> = sensors.iter().map(|_| rng.gen_range(0.0..100.0)).collect();
    for minute in 0..cfg.minutes {
        for (i, s) in sensors.iter().enumerate() {
            let ts = Timestamp(minute * MINUTE_MS + s.phase_ms);
            let qv = next_value(cfg.value_model, &mut walks_q[i], &mut rng);
            let vv = next_value(cfg.value_model, &mut walks_v[i], &mut rng);
            q.push(s.event(Q, ts, qv));
            v.push(s.event(V, ts, vv));
        }
    }
    q.sort_by_key(|e| e.ts);
    v.sort_by_key(|e| e.ts);
    Workload {
        streams: HashMap::from([(Q, q), (V, v)]),
    }
}

/// AirQuality-data generator configuration.
#[derive(Debug, Clone)]
pub struct AqConfig {
    /// Number of SDS011 + DHT22 sensor sites.
    pub sensors: u32,
    /// Simulated duration in minutes; each sensor reports every 3–5 min.
    pub minutes: i64,
    pub seed: u64,
    pub value_model: ValueModel,
    /// Offset added to sensor ids so AQ sites don't collide with QnV
    /// segments when both datasets are keyed together.
    pub id_offset: u32,
}

impl Default for AqConfig {
    fn default() -> Self {
        AqConfig {
            sensors: 8,
            minutes: 60,
            seed: 7,
            value_model: ValueModel::Uniform,
            id_offset: 0,
        }
    }
}

/// Generate the AQ streams: per site, an SDS011 reading (PM10 + PM2.5)
/// and an independent DHT22 reading (Temp + Hum), each every 3–5 minutes.
pub fn generate_aq(cfg: &AqConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA1);
    let mut pm10 = Vec::new();
    let mut pm25 = Vec::new();
    let mut temp = Vec::new();
    let mut hum = Vec::new();
    let end = cfg.minutes * MINUTE_MS;
    for idx in 0..cfg.sensors {
        let s = Sensor::new(cfg.id_offset + idx, 5 * MINUTE_MS, &mut rng);
        // SDS011 series.
        let mut w1 = rng.gen_range(0.0..100.0);
        let mut w2 = rng.gen_range(0.0..100.0);
        let mut ts = s.phase_ms;
        while ts < end {
            let t = Timestamp(ts);
            let a = next_value(cfg.value_model, &mut w1, &mut rng);
            let b = next_value(cfg.value_model, &mut w2, &mut rng);
            pm10.push(s.event(PM10, t, a));
            pm25.push(s.event(PM25, t, b));
            ts += rng.gen_range(3..=5) * MINUTE_MS;
        }
        // DHT22 series (independent cadence).
        let mut w3 = rng.gen_range(0.0..100.0);
        let mut w4 = rng.gen_range(0.0..100.0);
        let mut ts = (s.phase_ms + MINUTE_MS) % (5 * MINUTE_MS);
        while ts < end {
            let t = Timestamp(ts);
            let a = next_value(cfg.value_model, &mut w3, &mut rng);
            let b = next_value(cfg.value_model, &mut w4, &mut rng);
            temp.push(s.event(TEMP, t, a));
            hum.push(s.event(HUM, t, b));
            ts += rng.gen_range(3..=5) * MINUTE_MS;
        }
    }
    for v in [&mut pm10, &mut pm25, &mut temp, &mut hum] {
        v.sort_by_key(|e| e.ts);
    }
    Workload {
        streams: HashMap::from([(PM10, pm10), (PM25, pm25), (TEMP, temp), (HUM, hum)]),
    }
}

struct Sensor {
    id: u32,
    lat: f32,
    lon: f32,
    /// Stable offset inside the reporting interval, in ms.
    phase_ms: i64,
}

impl Sensor {
    fn new(id: u32, interval_ms: i64, rng: &mut StdRng) -> Sensor {
        // Phases are quantized to whole minutes: the paper's sensors report
        // on minute boundaries, and Theorem 2 requires the window slide
        // (1 minute by default) to be no larger than the stream
        // granularity — sub-minute timestamps with a 1-minute slide would
        // lose matches.
        let phase_minutes = interval_ms / MINUTE_MS;
        Sensor {
            id,
            // Hessen-ish bounding box.
            lat: rng.gen_range(49.4..51.7),
            lon: rng.gen_range(7.8..10.2),
            phase_ms: if phase_minutes > 1 {
                rng.gen_range(0..phase_minutes) * MINUTE_MS
            } else {
                0
            },
        }
    }

    fn event(&self, etype: EventType, ts: Timestamp, value: f64) -> Event {
        Event {
            etype,
            id: self.id,
            ts,
            value,
            lat: self.lat,
            lon: self.lon,
        }
    }
}

fn next_value(model: ValueModel, walk: &mut f64, rng: &mut StdRng) -> f64 {
    match model {
        ValueModel::Uniform => rng.gen_range(0.0..100.0),
        ValueModel::RandomWalk { step } => {
            *walk = (*walk + rng.gen_range(-step..step)).clamp(0.0, 100.0);
            *walk
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qnv(sensors: u32, minutes: i64, seed: u64) -> Workload {
        generate_qnv(&QnvConfig {
            sensors,
            minutes,
            seed,
            value_model: ValueModel::Uniform,
        })
    }

    #[test]
    fn qnv_counts_and_order() {
        let w = qnv(4, 100, 1);
        assert_eq!(w.stream(Q).len(), 400);
        assert_eq!(w.stream(V).len(), 400);
        assert_eq!(w.total_events(), 800);
        for s in w.streams.values() {
            assert!(s.windows(2).all(|p| p[0].ts <= p[1].ts), "sorted by ts");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(qnv(3, 50, 42).stream(Q), qnv(3, 50, 42).stream(Q));
        assert_ne!(qnv(3, 50, 42).stream(Q), qnv(3, 50, 43).stream(Q));
    }

    #[test]
    fn sensor_ids_span_key_range() {
        let w = qnv(16, 10, 1);
        let ids: std::collections::HashSet<u32> = w.stream(Q).iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 16);
        assert!(ids.iter().all(|&i| i < 16));
    }

    #[test]
    fn q_and_v_pair_up_per_reading() {
        let w = qnv(2, 10, 9);
        // Per sensor and minute, one Q and one V at the same ts.
        for (qe, ve) in w.stream(Q).iter().zip(w.stream(V)) {
            assert_eq!(qe.ts, ve.ts);
            assert_eq!(qe.id, ve.id);
        }
    }

    #[test]
    fn uniform_values_hit_calibrated_pass_rate() {
        let w = qnv(8, 500, 5);
        let thr = crate::threshold_for_pass_rate(0.25);
        let passed = w.stream(V).iter().filter(|e| e.value <= thr).count();
        let rate = passed as f64 / w.stream(V).len() as f64;
        assert!((rate - 0.25).abs() < 0.03, "measured pass rate {rate}");
    }

    #[test]
    fn aq_cadence_is_three_to_five_minutes() {
        let w = generate_aq(&AqConfig {
            sensors: 1,
            minutes: 200,
            ..Default::default()
        });
        let pm = w.stream(PM10);
        assert!(pm.len() > 30, "got {}", pm.len());
        for p in pm.windows(2) {
            let gap = (p[1].ts - p[0].ts).millis();
            assert!((3 * MINUTE_MS..=5 * MINUTE_MS).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn aq_id_offset_separates_key_spaces() {
        let w = generate_aq(&AqConfig {
            sensors: 4,
            id_offset: 100,
            ..Default::default()
        });
        assert!(w.stream(PM10).iter().all(|e| (100..104).contains(&e.id)));
    }

    #[test]
    fn with_total_events_sizes_accurately() {
        let cfg = QnvConfig::with_total_events(10, 100_000, 1);
        let w = generate_qnv(&cfg);
        let total = w.total_events();
        assert!(
            (90_000..=110_000).contains(&total),
            "requested ~100k, got {total}"
        );
    }

    #[test]
    fn random_walk_values_stay_bounded_and_correlated() {
        let w = generate_qnv(&QnvConfig {
            sensors: 1,
            minutes: 500,
            seed: 3,
            value_model: ValueModel::RandomWalk { step: 2.0 },
        });
        let vs = w.stream(V);
        assert!(vs.iter().all(|e| (0.0..=100.0).contains(&e.value)));
        let max_jump = vs
            .windows(2)
            .map(|p| (p[1].value - p[0].value).abs())
            .fold(0.0, f64::max);
        assert!(max_jump <= 2.0 + 1e-9, "walk steps bounded: {max_jump}");
    }

    #[test]
    fn merge_combines_and_resorts() {
        let mut a = qnv(2, 10, 1);
        let b = generate_aq(&AqConfig {
            sensors: 2,
            minutes: 40,
            ..Default::default()
        });
        let before = a.total_events();
        let b_total = b.total_events();
        a.merge(b);
        assert_eq!(a.total_events(), before + b_total);
        assert!(a.streams.contains_key(&PM10));
        let merged = a.merged();
        assert!(merged.windows(2).all(|p| p[0].ts <= p[1].ts));
    }
}

#[cfg(test)]
mod disorder_tests {
    use super::*;

    #[test]
    fn disorder_preserves_multiset_and_bounds_displacement() {
        let w = generate_qnv(&QnvConfig {
            sensors: 2,
            minutes: 100,
            seed: 3,
            value_model: ValueModel::Uniform,
        });
        let max_delay = 5 * MINUTE_MS;
        let d = w.clone().with_disorder(max_delay, 9);
        for (t, original) in &w.streams {
            let shuffled = d.stream(*t);
            assert_eq!(shuffled.len(), original.len());
            // Same events, different order.
            let mut a = original.clone();
            let mut b = shuffled.to_vec();
            let key = |e: &Event| (e.ts, e.id, e.value.to_bits());
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "multiset preserved");
            // Bounded disorder: no event arrives after one that is more
            // than max_delay newer.
            let mut max_seen = Timestamp::MIN;
            for e in shuffled {
                assert!(
                    e.ts.millis() >= max_seen.millis().saturating_sub(max_delay),
                    "event {e:?} displaced beyond the bound"
                );
                max_seen = max_seen.max(e.ts);
            }
        }
    }

    #[test]
    fn zero_delay_is_identity_order() {
        let w = generate_qnv(&QnvConfig {
            sensors: 2,
            minutes: 20,
            seed: 3,
            value_model: ValueModel::Uniform,
        });
        let d = w.clone().with_disorder(0, 1);
        assert_eq!(w.stream(crate::types::Q), d.stream(crate::types::Q));
    }
}
