//! # workloads — synthetic sensor streams for the evaluation
//!
//! The paper evaluates on two real-world datasets that are no longer
//! publicly available (the QnV traffic data's portal was shut down; see
//! paper footnote 3). This crate generates statistically equivalent
//! streams with the same schema `(id, lat, lon, ts, value)` and the same
//! knobs the experiments vary:
//!
//! * **QnV-Data** ([`generate_qnv`]): road-segment sensors reporting
//!   quantity (`Q`, cars/minute) and velocity (`V`, km/h) once per minute;
//! * **AirQuality-Data** ([`generate_aq`]): `SDS011` particulate sensors
//!   (`PM10`, `PM25`) and `DHT22` climate sensors (`Temp`, `Hum`)
//!   reporting every 3–5 minutes;
//! * sensor count = key cardinality (Figure 4), stream length = data
//!   volume, and uniformly distributed values so filter pass rates — and
//!   through them the output selectivity σₒ (Figure 3b) — are exactly
//!   calibratable via [`threshold_for_pass_rate`].
//!
//! Streams are deterministic per seed; [`csv`] round-trips them to disk in
//! the simple CSV format the paper's harness used.

pub mod csv;
pub mod generator;
pub mod types;

pub use generator::{generate_aq, generate_qnv, AqConfig, QnvConfig, ValueModel, Workload};
pub use types::{registry, HUM, PM10, PM25, Q, TEMP, V};

/// For `value ~ Uniform[0, 100)`: the threshold `t` such that
/// `P(value ≤ t) = pass_rate`. Used to calibrate filter selectivities.
pub fn threshold_for_pass_rate(pass_rate: f64) -> f64 {
    (pass_rate.clamp(0.0, 1.0)) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_calibration_is_linear() {
        assert_eq!(threshold_for_pass_rate(0.0), 0.0);
        assert_eq!(threshold_for_pass_rate(0.5), 50.0);
        assert_eq!(threshold_for_pass_rate(1.0), 100.0);
        assert_eq!(threshold_for_pass_rate(2.0), 100.0, "clamped");
    }
}
