//! The fixed event-type universe of the paper's workloads (Section 5.1.3):
//! the POJO child classes `Q`, `V`, `Temp`, `Hum`, `PM10`, `PM2.5` over the
//! common schema `(id, lat, lon, ts, value)`.

use asp::event::{EventType, TypeRegistry};

/// Traffic quantity — number of cars per minute on a road segment.
pub const Q: EventType = EventType(0);
/// Traffic velocity — average speed (km/h) on a road segment.
pub const V: EventType = EventType(1);
/// Particulate matter ≤ 10 µm (SDS011 sensor).
pub const PM10: EventType = EventType(2);
/// Particulate matter ≤ 2.5 µm (SDS011 sensor).
pub const PM25: EventType = EventType(3);
/// Temperature (DHT22 sensor).
pub const TEMP: EventType = EventType(4);
/// Humidity (DHT22 sensor).
pub const HUM: EventType = EventType(5);

/// A registry pre-populated with the six workload types in their canonical
/// order, so ids here and in parsed patterns agree.
pub fn registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    for name in ["Q", "V", "PM10", "PM25", "Temp", "Hum"] {
        reg.intern(name);
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_agree_with_registry_order() {
        let reg = registry();
        assert_eq!(reg.get("Q"), Some(Q));
        assert_eq!(reg.get("V"), Some(V));
        assert_eq!(reg.get("PM10"), Some(PM10));
        assert_eq!(reg.get("PM25"), Some(PM25));
        assert_eq!(reg.get("Temp"), Some(TEMP));
        assert_eq!(reg.get("Hum"), Some(HUM));
        assert_eq!(reg.len(), 6);
    }
}
