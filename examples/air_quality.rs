//! Air-quality alerting over multi-sensor streams: conjunction,
//! disjunction, and Kleene+ iteration — the SEA operators FlinkCEP does
//! *not* support (paper Table 2), running on the mapping.
//!
//! ```sh
//! cargo run --release --example air_quality
//! ```

use cep2asp_suite::asp::event::Attr;
use cep2asp_suite::cep2asp::exec::{run_pattern_simple, split_by_type};
use cep2asp_suite::cep2asp::MapperOptions;
use cep2asp_suite::sea::pattern::{builders, WindowSpec};
use cep2asp_suite::sea::predicate::{CmpOp, Predicate};
use cep2asp_suite::workloads::{generate_aq, AqConfig, ValueModel, HUM, PM10, PM25, TEMP};

fn main() {
    let workload = generate_aq(&AqConfig {
        sensors: 10,
        minutes: 720,
        seed: 99,
        value_model: ValueModel::RandomWalk { step: 5.0 },
        id_offset: 0,
    });
    let sources = split_by_type(&workload.merged());
    println!(
        "{} air-quality events from 10 sites\n",
        workload.total_events()
    );

    // 1. Smog episode: high PM10 AND high PM2.5 together within 30 min at
    //    the same site — a conjunction with an equi-key (FlinkCEP: ✗).
    let smog = builders::and(
        &[(PM10, "PM10"), (PM25, "PM25")],
        WindowSpec::minutes(30),
        vec![
            Predicate::threshold(0, Attr::Value, CmpOp::Ge, 80.0),
            Predicate::threshold(1, Attr::Value, CmpOp::Ge, 80.0),
            Predicate::same_id(0, 1),
        ],
    );
    let run = run_pattern_simple(&smog, &MapperOptions::o3(), &sources).unwrap();
    println!(
        "AND  (smog, equi-key O3):      {:>5} episodes   [{}]",
        run.dedup_matches().len(),
        run.plan.mapping
    );

    // 2. Ventilation trigger: extreme temperature OR extreme humidity —
    //    a disjunction mapped to a union (FlinkCEP: ✗).
    let extreme = builders::or(&[(TEMP, "Temp"), (HUM, "Hum")], WindowSpec::minutes(10));
    // Single-variable thresholds push down into the scans.
    let extreme = cep2asp_suite::sea::pattern::Pattern::new(
        "extreme",
        extreme.expr.clone(),
        extreme.window,
        vec![
            Predicate::threshold(0, Attr::Value, CmpOp::Ge, 95.0),
            Predicate::threshold(1, Attr::Value, CmpOp::Ge, 95.0),
        ],
    )
    .unwrap();
    let run = run_pattern_simple(&extreme, &MapperOptions::plain(), &sources).unwrap();
    println!(
        "OR   (extreme climate):        {:>5} alerts     [{}]",
        run.dedup_matches().len(),
        run.plan.mapping
    );

    // 3. Sustained pollution: at least 5 high-PM10 readings inside an hour
    //    — Kleene+ via the O2 count-aggregation (FlinkCEP: ✗ for ≥ m).
    let sustained = cep2asp_suite::sea::pattern::Pattern::new(
        "sustained",
        cep2asp_suite::sea::pattern::PatternExpr::Iter {
            leaf: cep2asp_suite::sea::pattern::Leaf::new(PM10, "PM10", "p").with_filter(
                Attr::Value,
                CmpOp::Ge,
                70.0,
            ),
            m: 5,
            at_least: true,
        },
        WindowSpec::minutes(60),
        vec![],
    )
    .unwrap();
    let run = run_pattern_simple(&sustained, &MapperOptions::o2(), &sources).unwrap();
    let windows = run.raw_matches();
    println!(
        "ITER+ (sustained pollution):   {:>5} qualifying windows  [{}]",
        windows.len(),
        run.plan.mapping
    );
    if let Some(worst) = windows
        .iter()
        .max_by(|a, b| a.agg.partial_cmp(&b.agg).unwrap())
    {
        println!(
            "      worst window: {} high readings ending {}",
            worst.agg.unwrap_or(0.0) as u64,
            worst.ts
        );
    }

    println!("\nall three patterns are outside FlinkCEP's operator support (Table 2);");
    println!("the mapping runs them as ordinary dataflow plans.");
}
