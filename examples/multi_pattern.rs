//! Multi-pattern monitoring: several patterns over the same sensor feeds
//! in one dataflow job, each translated with automatically chosen
//! optimizations — the "HSPS runs both paradigms' workloads in one
//! system" story of the paper's introduction, plus the multi-query and
//! auto-optimization capabilities its outlook calls for.
//!
//! ```sh
//! cargo run --release --example multi_pattern
//! ```

use cep2asp_suite::asp::event::Attr;
use cep2asp_suite::asp::runtime::ExecutorConfig;
use cep2asp_suite::cep2asp::exec::split_by_type;
use cep2asp_suite::cep2asp::{auto_options, run_patterns, PatternJob, PhysicalConfig, StreamStats};
use cep2asp_suite::sea::pattern::{builders, Leaf, WindowSpec};
use cep2asp_suite::sea::predicate::{CmpOp, Predicate};
use cep2asp_suite::workloads::{
    generate_aq, generate_qnv, AqConfig, QnvConfig, ValueModel, HUM, PM10, PM25, Q, TEMP, V,
};

fn main() {
    // One city's worth of feeds: traffic + air quality, shared by all
    // patterns below.
    let mut w = generate_qnv(&QnvConfig {
        sensors: 6,
        minutes: 720,
        seed: 2024,
        value_model: ValueModel::RandomWalk { step: 7.0 },
    });
    w.merge(generate_aq(&AqConfig {
        sensors: 6,
        minutes: 720,
        seed: 2024,
        value_model: ValueModel::RandomWalk { step: 5.0 },
        id_offset: 0,
    }));
    let sources = split_by_type(&w.merged());
    let stats = StreamStats::from_sources(&sources);
    println!(
        "monitoring {} events across {} streams\n",
        w.total_events(),
        sources.len()
    );

    // Four patterns, four SEA operators, one job.
    let congestion = builders::seq(
        &[(Q, "Q"), (V, "V")],
        WindowSpec::minutes(10),
        vec![
            Predicate::threshold(0, Attr::Value, CmpOp::Ge, 70.0),
            Predicate::threshold(1, Attr::Value, CmpOp::Le, 20.0),
            Predicate::same_id(0, 1),
        ],
    );
    let smog = builders::and(
        &[(PM10, "PM10"), (PM25, "PM25")],
        WindowSpec::minutes(30),
        vec![
            Predicate::threshold(0, Attr::Value, CmpOp::Ge, 75.0),
            Predicate::threshold(1, Attr::Value, CmpOp::Ge, 75.0),
            Predicate::same_id(0, 1),
        ],
    );
    let climate_alarm = builders::or(&[(TEMP, "Temp"), (HUM, "Hum")], WindowSpec::minutes(5));
    let no_recovery = builders::nseq(
        (V, "V"),
        Leaf::new(Q, "Q", "calm").with_filter(Attr::Value, CmpOp::Le, 15.0),
        (V, "V2"),
        WindowSpec::minutes(20),
        vec![
            Predicate::threshold(0, Attr::Value, CmpOp::Le, 25.0),
            Predicate::threshold(1, Attr::Value, CmpOp::Le, 25.0),
        ],
    );

    let jobs: Vec<PatternJob> = [
        ("congestion", congestion),
        ("smog", smog),
        ("climate-alarm", climate_alarm),
        ("stop-and-go", no_recovery),
    ]
    .into_iter()
    .map(|(name, pattern)| {
        // Per-pattern optimization from the shared statistics.
        let opts = auto_options(&pattern, &stats);
        PatternJob::new(name, pattern, opts)
    })
    .collect();

    let multi = run_patterns(
        &jobs,
        &sources,
        &PhysicalConfig::default(),
        &ExecutorConfig::default(),
    )
    .expect("multi-pattern job");

    println!(
        "{:<15} {:>9} {:>12}  plan",
        "pattern", "matches", "raw emits"
    );
    for name in multi.names() {
        let plan = multi.plan(name).expect("plan exists");
        println!(
            "{:<15} {:>9} {:>12}  {}",
            name,
            multi.dedup_matches(name).len(),
            multi.raw_count(name),
            plan.mapping
        );
    }
    println!(
        "\none executor job: {} source events ingested in {:.2}s ({:.0} events/s)",
        multi.report.source_events,
        multi.report.duration.as_secs_f64(),
        multi.report.source_events as f64 / multi.report.duration.as_secs_f64()
    );
}
