//! A tour of the declarative pattern specification language (PSL): write
//! patterns as text, watch them become plans, and run one — the
//! "declarative pattern → execution pipeline" parser the paper's future
//! work calls for.
//!
//! ```sh
//! cargo run --release --example psl_tour
//! ```

use cep2asp_suite::cep2asp::exec::{run_pattern_simple, split_by_type};
use cep2asp_suite::cep2asp::{auto_options, translate, StreamStats};
use cep2asp_suite::sea::parse;
use cep2asp_suite::workloads::{self, generate_aq, generate_qnv, AqConfig, QnvConfig, ValueModel};

fn main() {
    // The registry carries type-name ↔ id mappings shared with the
    // workload generators.
    let mut types = workloads::registry();

    let specs = [
        // The paper's Listing 2.
        "PATTERN SEQ(Q e1, V e2, PM10 e3)
         WHERE e1.value <= e2.value AND e3.value <= 10
         WITHIN 4 MINUTES",
        // Conjunction with an equi-key (enables O3 partitioning).
        "PATTERN AND(PM10 a, PM25 b)
         WHERE a.id == b.id AND a.value >= 50 AND b.value >= 30
         WITHIN 30 MINUTES",
        // Disjunction.
        "PATTERN OR(Temp t, Hum h) WITHIN 10 MINUTES",
        // Bounded iteration with a custom slide.
        "PATTERN ITER(V v, 4) WITHIN 15 MINUTES SLIDE 1 MINUTE",
        // Kleene+ (≥ 3 occurrences).
        "PATTERN ITER(V v, 3+) WITHIN 15 MINUTES",
        // Negated sequence with a filter on the absent event.
        "PATTERN SEQ(Q a, NOT PM10 n, V b)
         WHERE a.value <= 40 AND n.value > 60
         WITHIN 15 MINUTES
         RETURN *",
    ];

    // Stream statistics drive the automatic optimizer (the paper's
    // future-work item): rates and sampled selectivities pick O1/O2/O3
    // and the join order without user hints.
    let mut stats_w = generate_qnv(&QnvConfig {
        sensors: 4,
        minutes: 600,
        seed: 1,
        value_model: ValueModel::Uniform,
    });
    stats_w.merge(generate_aq(&AqConfig {
        sensors: 4,
        minutes: 600,
        seed: 1,
        value_model: ValueModel::Uniform,
        id_offset: 0,
    }));
    let stat_sources = split_by_type(&stats_w.merged());
    let stats = StreamStats::from_sources(&stat_sources);

    for (i, spec) in specs.iter().enumerate() {
        println!("─── pattern {} ───────────────────────────────", i + 1);
        println!("{}\n", spec.trim());
        let pattern = match parse(spec, &mut types) {
            Ok(p) => p,
            Err(e) => {
                println!("  {e}\n");
                continue;
            }
        };
        let opts = auto_options(&pattern, &stats);
        match translate(&pattern, &opts) {
            Ok(plan) => println!("{}", plan.explain()),
            Err(e) => println!("  not mappable: {e}"),
        }
    }

    // Run the last parsed pattern (the NSEQ) on generated data.
    println!("─── executing the negated sequence ───────────");
    let pattern = parse(specs[5], &mut types).expect("parses");
    let opts = auto_options(&pattern, &stats);
    let run = run_pattern_simple(&pattern, &opts, &stat_sources).unwrap();
    println!(
        "{} matches from {} events at {:.0} events/s",
        run.dedup_matches().len(),
        run.report.source_events,
        run.report.throughput()
    );
}
