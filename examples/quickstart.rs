//! Quickstart: define a pattern, map it to an ASP plan, run it, inspect
//! the matches — in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cep2asp_suite::asp::event::Attr;
use cep2asp_suite::cep2asp::exec::{run_pattern_simple, split_by_type};
use cep2asp_suite::cep2asp::MapperOptions;
use cep2asp_suite::sea::pattern::{builders, WindowSpec};
use cep2asp_suite::sea::predicate::{CmpOp, Predicate};
use cep2asp_suite::workloads::{generate_qnv, QnvConfig, ValueModel, Q, V};

fn main() {
    // 1. A stream: 8 road sensors reporting quantity (Q) and velocity (V)
    //    once per minute for two simulated hours.
    let workload = generate_qnv(&QnvConfig {
        sensors: 8,
        minutes: 120,
        seed: 42,
        value_model: ValueModel::RandomWalk { step: 6.0 },
    });
    println!(
        "generated {} events ({} Q, {} V)",
        workload.total_events(),
        workload.stream(Q).len(),
        workload.stream(V).len()
    );

    // 2. A congestion pattern: many cars (Q high) followed by low speed
    //    (V low) on the same road segment within 10 minutes.
    //
    //    PATTERN SEQ(Q q, V v)
    //    WHERE q.value >= 60 AND v.value <= 25 AND q.id == v.id
    //    WITHIN 10 MINUTES
    let pattern = builders::seq(
        &[(Q, "Q"), (V, "V")],
        WindowSpec::minutes(10),
        vec![
            Predicate::threshold(0, Attr::Value, CmpOp::Ge, 60.0),
            Predicate::threshold(1, Attr::Value, CmpOp::Le, 25.0),
            Predicate::same_id(0, 1),
        ],
    );
    println!("\n{pattern}\n");

    // 3. Translate the pattern into a decomposed ASP query plan (the
    //    paper's operator mapping) and run it on the threaded dataflow
    //    engine. `MapperOptions::o1().and_o3()` enables interval joins and
    //    equi-key partitioning.
    let sources = split_by_type(&workload.merged());
    let run = run_pattern_simple(&pattern, &MapperOptions::o1().and_o3(), &sources)
        .expect("pipeline runs");

    println!("executed plan:\n{}", run.plan.explain());
    println!(
        "throughput: {:.0} events/s over {} source events",
        run.report.throughput(),
        run.report.source_events
    );

    // 4. Inspect the matches (deduplicated, in pattern-position order).
    let matches = run.dedup_matches();
    println!("\n{} congestion episodes detected:", matches.len());
    for m in matches.iter().take(5) {
        let q = &m.0[0];
        let v = &m.0[1];
        println!(
            "  sensor {:>2}: {} cars/min at {}, then {:.0} km/h at {}",
            q.id, q.value as i64, q.ts, v.value, v.ts
        );
    }
    if matches.len() > 5 {
        println!("  … and {} more", matches.len() - 5);
    }
}
