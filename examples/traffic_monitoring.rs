//! Traffic congestion monitoring — the paper's motivating IoT scenario —
//! comparing the mapped ASP execution against the FlinkCEP-style NFA
//! baseline on the same pattern and stream, end to end.
//!
//! Detects *stop-and-go* traffic: a velocity drop with no recovery in
//! between, expressed as a negated sequence
//! `SEQ(V slow, ¬V fast, V slow2)` — two slow readings on a road segment
//! with no fast reading between them.
//!
//! ```sh
//! cargo run --release --example traffic_monitoring
//! ```

use cep2asp_suite::asp::event::Attr;
use cep2asp_suite::asp::runtime::{Executor, ExecutorConfig};
use cep2asp_suite::cep::{build_baseline, BaselineConfig};
use cep2asp_suite::cep2asp::exec::{dedup_sorted, run_pattern_simple, split_by_type};
use cep2asp_suite::cep2asp::MapperOptions;
use cep2asp_suite::sea::pattern::{builders, Leaf, WindowSpec};
use cep2asp_suite::sea::predicate::{CmpOp, Predicate};
use cep2asp_suite::workloads::{generate_qnv, QnvConfig, ValueModel, Q, V};

fn main() {
    let workload = generate_qnv(&QnvConfig {
        sensors: 6,
        minutes: 360,
        seed: 7,
        value_model: ValueModel::RandomWalk { step: 8.0 },
    });

    // Stop-and-go: slow (≤ 30 km/h), no recovery (> 50 km/h) in between,
    // slow again — within 20 minutes. A quantity reading (Q) above 40
    // confirms the congestion is load-induced.
    let pattern = builders::nseq(
        (V, "V"),
        Leaf::new(V, "V", "fast"), // would clash: same type — see below
        (V, "V"),
        WindowSpec::minutes(20),
        vec![],
    );
    // The negated leaf shares the trigger's event type, which the mapping
    // rejects (the NSEQ rewrite cannot disambiguate trigger from marker
    // after the union). Model recovery via the Q stream instead: free-flow
    // implies low quantity, so "no low-quantity reading in between".
    drop(pattern);
    let pattern = builders::nseq(
        (V, "V"),
        Leaf::new(Q, "Q", "calm").with_filter(Attr::Value, CmpOp::Le, 20.0),
        (V, "V"),
        WindowSpec::minutes(20),
        vec![
            Predicate::threshold(0, Attr::Value, CmpOp::Le, 30.0),
            Predicate::threshold(1, Attr::Value, CmpOp::Le, 30.0),
        ],
    );
    println!("{pattern}\n");

    let sources = split_by_type(&workload.merged());

    // --- The mapping (FASP) ---
    let fasp =
        run_pattern_simple(&pattern, &MapperOptions::o1(), &sources).expect("mapped pipeline");
    let fasp_matches = fasp.dedup_matches();
    println!(
        "FASP  : {:>6} matches, {:>10.0} events/s  (plan: {})",
        fasp_matches.len(),
        fasp.report.throughput(),
        fasp.plan.mapping
    );

    // --- The NFA baseline (FCEP) ---
    let (graph, sink) = build_baseline(&pattern, &sources, &BaselineConfig::default())
        .expect("NSEQ is FCEP-supported");
    let mut report = Executor::new(ExecutorConfig::default())
        .run(graph)
        .expect("baseline runs");
    let fcep_matches = dedup_sorted(&report.take_sink(sink));
    println!(
        "FCEP  : {:>6} matches, {:>10.0} events/s  (single NFA operator)",
        fcep_matches.len(),
        report.throughput(),
    );

    // --- Same semantics, different execution ---
    assert_eq!(fasp_matches, fcep_matches, "both engines agree");
    println!("\nboth engines found identical match sets ✓");

    for m in fasp_matches.iter().take(3) {
        println!(
            "  sensor {:>2}: {:.0} km/h at {} … {:.0} km/h at {} (no traffic lull between)",
            m.0[0].id, m.0[0].value, m.0[0].ts, m.0[1].value, m.0[1].ts
        );
    }
}
