#!/usr/bin/env bash
# Regenerate BENCH_hotpath.json: absolute throughput of the runtime hot
# path swept over batch_size ∈ {1, 16, 64, 256}.
#
# Usage: scripts/bench_hotpath.sh [--quick] [--out PATH] [--telemetry PATH]
#   --quick          smaller event counts / fewer repetitions (CI smoke mode)
#   --out PATH       output file (default: BENCH_hotpath.json at the repo root)
#   --telemetry PATH runtime-telemetry export from one instrumented run
#                    (default: BENCH_hotpath_telemetry.json) — per-operator
#                    latency histograms, watermark-lag / queue-depth /
#                    backpressure gauges, resource samples, and the event
#                    log, printed as a summary block after the sweep
#
# The headline number is speedup_filter_map_64_vs_1; the micro-batching
# work's acceptance floor is 2x. Relative, statistically sampled numbers
# live in the criterion suite: cargo bench -p bench --bench hotpath
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --offline --release -p bench --bin hotpath
exec ./target/release/hotpath "$@"
