#!/usr/bin/env bash
# Regenerate BENCH_hotpath.json: absolute throughput of the runtime hot
# path swept over batch_size ∈ {1, 16, 64, 256}, plus the keyed-join sweep
# over key cardinality K ∈ {1, 4, 64, 1024} against the frozen global-scan
# baseline.
#
# Usage: scripts/bench_hotpath.sh [--quick] [--out PATH] [--telemetry PATH]
#                                 [--assert-keyed-floor] [--assert-columnar-floor]
#                                 [--assert-shard-floor] [--assert-multi-floor]
#   --quick          smaller event counts / fewer repetitions (CI smoke mode)
#   --out PATH       output file (default: BENCH_hotpath.json at the repo root)
#   --telemetry PATH runtime-telemetry export from one instrumented run
#                    (default: BENCH_hotpath_telemetry.json) — per-operator
#                    latency histograms, watermark-lag / queue-depth /
#                    backpressure gauges, resource samples, and the event
#                    log, printed as a summary block after the sweep
#   --assert-keyed-floor  exit nonzero if the key-partitioned window join at
#                    K=64, batch 64 falls below the global-scan baseline
#                    (the CI regression gate for the join state layout)
#   --assert-columnar-floor  exit nonzero if the columnar filter→map chain
#                    at batch 256 falls below the row plane on the same
#                    graph (the CI regression gate for the columnar plane),
#                    or if the batch-1 crossover drops below 0.9x the row
#                    plane (the gate for the automatic row-plane fallback)
#   --assert-shard-floor  exit nonzero if the adaptive multi-shard zipf
#                    join falls below 1.3x static hashing or 3x
#                    single-instance. The worker count auto-sizes to the
#                    host — cores clamped to [2, 8], recorded in the JSON
#                    as `shard_workers` — and the floor is asserted only
#                    on hosts with >= 4 cores; skipped with a loud notice
#                    otherwise, since shard workers time-slicing fewer
#                    cores measure contention, not scaling (the JSON
#                    records the host's `cores`)
#   --assert-multi-floor  exit nonzero if the shared-subplan DAG over 1000
#                    overlapping pattern variants (`multi_patterns`) falls
#                    below 3x the isolated per-pattern pipelines on the
#                    same workload (the CI gate for the multi-query
#                    optimizer; best-of-3 interleaved walls per arm)
#
# Headline numbers: speedup_filter_map_64_vs_1 (micro-batching acceptance
# floor 2x), speedup_window_join_keyed_k64_vs_global_scan (key-partitioned
# state target 3x), speedup_filter_map_columnar_vs_row_256 (columnar data
# plane target 1.5x), and speedup_shard_adaptive_vs_{static,single}
# (adaptive sharding targets 1.3x / 3x on >= 4 cores), and
# speedup_multi_shared_vs_isolated (shared-subplan optimizer target 3x at
# 1000 overlapping variants). Relative,
# statistically sampled numbers live in the criterion suite:
# cargo bench -p bench --bench hotpath
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --offline --release -p bench --bin hotpath
exec ./target/release/hotpath "$@"
