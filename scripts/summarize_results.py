#!/usr/bin/env python3
"""Summarize results/*.jsonl as compact per-experiment tables.

Used to refresh EXPERIMENTS.md after a `repro all` run.
"""
import json
import glob
import sys

out_dir = sys.argv[1] if len(sys.argv) > 1 else "results"
for f in sorted(glob.glob(f"{out_dir}/*.jsonl")):
    print(f"== {f}")
    for line in open(f):
        r = json.loads(line)
        params = " ".join(f"{k}={v}" for k, v in r["params"].items())
        if r.get("failed"):
            print(f"  {r['system']:<14} {params:<40} FAILED: {r['failed'][:60]}")
            continue
        lat = f"{r['latency_mean_ms']:.1f}ms" if r["latency_mean_ms"] else "-"
        print(
            f"  {r['system']:<14} {params:<40} {r['throughput_tps']/1e6:7.2f}M tpl/s"
            f"  sel={r['selectivity_pct']:9.4f}%  lat={lat:>9}  state={r['peak_state_mib']:7.1f}MiB"
        )
