//! # cep2asp-suite — umbrella crate
//!
//! Re-exports the whole reproduction of *Bridging the Gap: Complex Event
//! Processing on Stream Processing Systems* (Ziehn et al., EDBT 2024) so
//! examples and cross-crate integration tests can depend on one crate:
//!
//! * [`asp`] — the analytical stream processing substrate (dataflow
//!   engine: event time, windows, joins, keyed parallelism);
//! * [`sea`] — the Simple Event Algebra: patterns, predicates, the formal
//!   oracle, and the SASE+-style pattern language;
//! * [`cep`] — the FlinkCEP-style NFA baseline (the single unary operator
//!   the paper's mapping outperforms);
//! * [`cep2asp`] — the operator mapping itself: pattern → decomposed ASP
//!   plan, with the O1/O2/O3 optimizations;
//! * [`workloads`] — deterministic QnV / AirQuality stream generators.
//!
//! See `examples/quickstart.rs` for the one-minute tour.

pub use asp;
pub use cep;
pub use cep2asp;
pub use sea;
pub use workloads;
