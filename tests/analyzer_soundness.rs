//! Analyzer soundness, property-tested: the static worst-case bounds of
//! `sea::annotations` (which `cep2asp::analyze` builds its per-node
//! estimates from) must never undercut what the executable semantics
//! actually produce.
//!
//! Two oracles falsify the cost model:
//!
//! 1. the formal oracle's per-window match count is bounded by
//!    [`pattern_window_bound`] evaluated at that window's true per-type
//!    content counts (predicates only ever reduce matches, so the
//!    predicate-blind bound must dominate);
//! 2. the NFA baseline's live-run peak is bounded by
//!    [`nfa_prefix_bound`] evaluated at the per-type peaks over any
//!    window-length interval ([`max_interval_count`] — partial matches
//!    span `< W` regardless of window alignment).
//!
//! A failure here means `analyze`'s EXPLAIN numbers (and the debug-build
//! runtime cross-check derived from the same formulas) can lie.

#![allow(clippy::unwrap_used)]

use std::collections::HashMap;

use asp::event::{Attr, Event, EventType};
use asp::time::Timestamp;
use cep::{Nfa, NfaEngine, SelectionPolicy};
use proptest::prelude::*;
use sea::pattern::{builders, Leaf, Pattern, WindowSpec};
use sea::predicate::{CmpOp, Predicate};
use sea::{max_interval_count, nfa_prefix_bound, pattern_window_bound};

const TYPES: [(EventType, &str); 3] = [
    (EventType(0), "A"),
    (EventType(1), "B"),
    (EventType(2), "C"),
];

fn arb_event() -> impl Strategy<Value = Event> {
    (0u16..3, 0u32..3, 0i64..40, 0u32..100).prop_map(|(t, id, minute, v)| {
        Event::new(EventType(t), id, Timestamp::from_minutes(minute), v as f64)
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(arb_event(), 5..60)
}

/// Pattern shapes under test; a subset is NFA-compilable.
#[derive(Debug, Clone)]
enum Shape {
    Seq(Vec<usize>),
    And(Vec<usize>),
    IterExact {
        t: usize,
        m: usize,
    },
    Nseq {
        first: usize,
        absent: usize,
        last: usize,
    },
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        proptest::collection::vec(0usize..3, 2..4).prop_map(Shape::Seq),
        proptest::collection::vec(0usize..3, 2..3).prop_map(Shape::And),
        (0usize..3, 2usize..4).prop_map(|(t, m)| Shape::IterExact { t, m }),
        (0usize..3, 0usize..3, 0usize..3)
            .prop_filter("absent must differ from first", |(f, a, _)| f != a)
            .prop_map(|(first, absent, last)| Shape::Nseq {
                first,
                absent,
                last
            }),
    ]
}

fn make_pattern(shape: &Shape, w_minutes: i64, threshold: f64) -> Pattern {
    let w = WindowSpec::minutes(w_minutes);
    match shape {
        Shape::Seq(ts) => {
            let types: Vec<_> = ts.iter().map(|&i| TYPES[i]).collect();
            let preds = vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, threshold)];
            builders::seq(&types, w, preds)
        }
        Shape::And(ts) => {
            let types: Vec<_> = ts.iter().map(|&i| TYPES[i]).collect();
            builders::and(&types, w, vec![])
        }
        Shape::IterExact { t, m } => {
            let (etype, name) = TYPES[*t];
            let preds = vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, threshold)];
            builders::iter(etype, name, *m, w, preds)
        }
        Shape::Nseq {
            first,
            absent,
            last,
        } => builders::nseq(
            TYPES[*first],
            Leaf::new(TYPES[*absent].0, TYPES[*absent].1, "n").with_filter(
                Attr::Value,
                CmpOp::Gt,
                threshold,
            ),
            TYPES[*last],
            w,
            vec![],
        ),
    }
}

/// Per-type event counts of one window's content, as an `f64` lookup.
fn content_counts(content: &[Event]) -> HashMap<EventType, f64> {
    let mut m: HashMap<EventType, f64> = HashMap::new();
    for e in content {
        *m.entry(e.etype).or_default() += 1.0;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 200,
    })]

    /// Oracle per-window match counts never exceed the static per-window
    /// bound at the window's true content counts.
    #[test]
    fn oracle_window_counts_respect_static_bound(
        events in arb_stream(),
        shape in arb_shape(),
        w in 2i64..8,
        threshold in 10.0f64..90.0,
    ) {
        let pattern = make_pattern(&shape, w, threshold);
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.ts);
        for (wid, matches) in sea::oracle::evaluate_per_window(&pattern, &events) {
            let lo = sorted.partition_point(|e| e.ts < wid.start);
            let hi = sorted.partition_point(|e| e.ts < wid.end);
            let counts = content_counts(&sorted[lo..hi]);
            let bound = pattern_window_bound(&pattern.expr, &|t| {
                counts.get(&t).copied().unwrap_or(0.0)
            });
            prop_assert!(
                (matches.len() as f64) <= bound + 1e-9,
                "window {:?}: {} oracle matches > static bound {} for {:?}",
                wid, matches.len(), bound, shape
            );
        }
    }

    /// The NFA's live partial-match peak never exceeds the static prefix
    /// bound at the per-type interval peaks (NFA-supported shapes only:
    /// SEQ, exact ITER, ternary NSEQ — AND has no NFA form).
    #[test]
    fn nfa_run_peak_respects_static_bound(
        events in arb_stream(),
        shape in arb_shape(),
        w in 2i64..8,
        threshold in 10.0f64..90.0,
    ) {
        let pattern = make_pattern(&shape, w, threshold);
        let Ok(nfa) = Nfa::compile(&pattern) else {
            return Ok(()); // AND — unsupported by the baseline (Table 2).
        };
        let w_ms = pattern.window.size.millis();
        let mut per_type_ts: HashMap<EventType, Vec<i64>> = HashMap::new();
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.ts);
        for e in &sorted {
            per_type_ts.entry(e.etype).or_default().push(e.ts.millis());
        }
        let bound = nfa_prefix_bound(&pattern, &|t| {
            per_type_ts
                .get(&t)
                .map(|ts| max_interval_count(ts, w_ms) as f64)
                .unwrap_or(0.0)
        });

        let mut engine = NfaEngine::new(nfa, SelectionPolicy::SkipTillAnyMatch);
        let mut out = Vec::new();
        let mut peak = 0usize;
        for e in &sorted {
            // Watermark = current ts: everything older than a full window
            // is dead, mirroring the runtime's pruning discipline.
            engine.prune(e.ts);
            engine.process(e, &mut out);
            peak = peak.max(engine.run_count());
        }
        prop_assert!(
            (peak as f64) <= bound + 1e-9,
            "NFA live-run peak {} > static prefix bound {} for {:?}",
            peak, bound, shape
        );
    }
}
