//! Cross-plane equivalence oracle for the columnar data plane: random
//! stateless pipelines (spec filters, declarative maps, closure filters,
//! unions) × batch sizes × watermark cadences, each executed once on the
//! columnar plane and once pinned to the row plane. The two runs must
//! deliver the identical sink multiset — same matches ([`MatchKey`]), same
//! keys and working timestamps — and the same late-drop accounting.
//!
//! Because `ExecutorConfig::columnar` is the *only* knob that differs, any
//! divergence is a columnar-plane bug by construction: the row plane is
//! the long-standing reference semantics. Closure stages force the
//! runtime's row shim mid-pipeline, so mixed chains (vectorized σ feeding
//! a row-only op and back) are covered, not just all-columnar ones.
//!
//! The file also pins the G016 contract: an operator that *declares*
//! columnar support but rejects its payload at runtime surfaces as a
//! [`Code::ColumnarPayloadMismatch`] validation error, not a panic or a
//! silent row fallback.

#![allow(clippy::unwrap_used)] // test code

use std::sync::Arc;

use asp::columnar::ColumnarBatch;
use asp::error::{OpError, PipelineError};
use asp::event::{Attr, Event, EventType};
use asp::graph::{Exchange, GraphBuilder, SourceConfig};
use asp::operator::{BatchSupport, Cmp, Collector, FilterOp, FilterSpec, MapOp, Operator, UnionOp};
use asp::runtime::{Executor, ExecutorConfig, RunReport};
use asp::time::{Duration, Timestamp};
use asp::tuple::{MatchKey, Tuple};
use asp::validate::Code;
use proptest::prelude::*;

const CMPS: [Cmp; 6] = [Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge, Cmp::Eq, Cmp::Ne];

/// One stateless pipeline stage, as generatable data.
#[derive(Debug, Clone)]
enum Stage {
    /// Declarative filter — vectorizes.
    Spec {
        etype: Option<u16>,
        clauses: Vec<(usize, usize, f64)>, // (Attr::ALL idx, CMPS idx, const)
    },
    /// Closure filter with the same semantics — row path only, forcing
    /// the shim when it appears in an otherwise columnar pipeline.
    Closure { threshold: f64 },
    /// Declarative map kind: 0 = identity, 1 = uniform key, 2 = key by
    /// head event id, 3 = ts→max, 4 = ts→min.
    Map(u8),
}

impl Stage {
    fn build(&self, n: usize) -> Box<dyn Operator> {
        match self.clone() {
            Stage::Spec { etype, clauses } => {
                let mut spec = FilterSpec {
                    etype: etype.map(EventType),
                    clauses: Vec::new(),
                };
                for (a, c, k) in clauses {
                    spec = spec.clause(Attr::ALL[a], CMPS[c], k);
                }
                Box::new(FilterOp::with_spec(format!("σ{n}"), spec))
            }
            Stage::Closure { threshold } => Box::new(FilterOp::new(
                format!("σc{n}"),
                Arc::new(move |t: &Tuple| t.head().is_some_and(|e| e.value >= threshold)),
            )),
            Stage::Map(0) => Box::new(MapOp::identity(format!("Π{n}"))),
            Stage::Map(1) => Box::new(MapOp::uniform_key(format!("Π{n}"), 7)),
            Stage::Map(2) => Box::new(MapOp::key_by_event_id(format!("Π{n}"), 0)),
            Stage::Map(3) => Box::new(MapOp::ts_to_max(format!("Π{n}"))),
            Stage::Map(_) => Box::new(MapOp::ts_to_min(format!("Π{n}"))),
        }
    }
}

#[derive(Debug, Clone)]
struct Case {
    events: Vec<Event>,
    stages: Vec<Stage>,
    /// Merge the stream with its second half through a ∪ first.
    union: bool,
    batch_size: usize,
    watermark_every: usize,
    lag_minutes: i64,
    chaining: bool,
}

fn arb_event() -> impl Strategy<Value = Event> {
    (0u16..3, 0u32..4, 0i64..40, 0u32..100).prop_map(|(t, id, minute, v)| {
        Event::new(EventType(t), id, Timestamp::from_minutes(minute), v as f64)
    })
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (
            // 3 encodes "no etype gate".
            (0u16..4).prop_map(|t| (t < 3).then_some(t)),
            proptest::collection::vec((0usize..3, 0usize..6, 0u32..100), 0..3)
        )
            .prop_map(|(etype, raw)| {
                let clauses = raw
                    .into_iter()
                    .map(|(a, c, k)| {
                        // Keep constants in the attribute's natural range so
                        // filters are neither all-pass nor all-drop.
                        let k = match Attr::ALL[a] {
                            Attr::Ts => Timestamp::from_minutes((k % 40) as i64).millis() as f64,
                            Attr::Id => (k % 4) as f64,
                            _ => k as f64,
                        };
                        (a, c, k)
                    })
                    .collect();
                Stage::Spec { etype, clauses }
            }),
        (0u32..100).prop_map(|t| Stage::Closure {
            threshold: t as f64
        }),
        (0u32..5).prop_map(|m| Stage::Map(m as u8)),
    ]
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        (
            proptest::collection::vec(arb_event(), 5..120),
            proptest::collection::vec(arb_stage(), 1..4),
            any::<bool>(),
        ),
        (
            prop_oneof![Just(1usize), Just(3), Just(64)],
            prop_oneof![Just(1usize), Just(7), Just(64)],
            prop_oneof![Just(0i64), Just(40)],
            any::<bool>(),
        ),
    )
        .prop_map(
            |((events, stages, union), (batch_size, watermark_every, lag_minutes, chaining))| {
                Case {
                    events,
                    stages,
                    union,
                    batch_size,
                    watermark_every,
                    lag_minutes,
                    chaining,
                }
            },
        )
}

/// Run the case's pipeline on one data plane and return the report + sink.
fn run_case(case: &Case, columnar: bool) -> (RunReport, asp::graph::SinkId) {
    let mut g = GraphBuilder::new();
    let src_cfg = |events: Vec<Event>| {
        SourceConfig::new(events)
            .with_watermark_every(case.watermark_every)
            .with_watermark_lag(Duration::from_minutes(case.lag_minutes))
    };
    let head = if case.union {
        let mid = case.events.len() / 2;
        let a = g.source_with("a", src_cfg(case.events[..mid].to_vec()), 1);
        let b = g.source_with("b", src_cfg(case.events[mid..].to_vec()), 1);
        g.binary(
            a,
            b,
            Exchange::Forward,
            1,
            Box::new(|_| Box::new(UnionOp::new("∪", 2))),
        )
    } else {
        g.source_with("s", src_cfg(case.events.clone()), 1)
    };
    let mut node = head;
    for (n, stage) in case.stages.iter().enumerate() {
        let stage = stage.clone();
        node = g.unary(
            node,
            Exchange::Forward,
            1,
            Box::new(move |_| stage.build(n)),
        );
    }
    let sink = g.sink(node, Exchange::Forward);
    let report = Executor::new(ExecutorConfig {
        columnar,
        batch_size: case.batch_size,
        operator_chaining: case.chaining,
        ..ExecutorConfig::default()
    })
    .run(g)
    .expect("stateless oracle pipeline runs to completion");
    (report, sink)
}

/// One sink tuple, canonicalized: (key, ts ms, ats ms, agg bits, match id).
type CanonRow = (u64, i64, Option<i64>, Option<u64>, MatchKey);

/// Canonical multiset of what reached the sink: match identity plus the
/// routing/timing metadata the stages rewrite (key, working ts, ats, agg).
/// Wall stamps are excluded — they are harness-clock readings and differ
/// across runs by construction.
fn canon(report: &RunReport, sink: asp::graph::SinkId) -> Vec<CanonRow> {
    let mut out: Vec<_> = report
        .sink(sink)
        .iter()
        .map(|t| {
            (
                t.key,
                t.ts.millis(),
                t.ats.map(|a| a.millis()),
                t.agg.map(f64::to_bits),
                t.match_key(),
            )
        })
        .collect();
    out.sort();
    out
}

fn late_dropped(report: &RunReport) -> u64 {
    report.nodes.iter().map(|n| n.late_dropped).sum()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// THE equivalence oracle: columnar and row planes agree on every
    /// random stateless pipeline, batch size, and punctuation cadence.
    #[test]
    fn columnar_and_row_planes_deliver_identical_sinks(case in arb_case()) {
        let (rc, sc) = run_case(&case, true);
        let (rr, sr) = run_case(&case, false);
        prop_assert_eq!(rc.sink_count(sc), rr.sink_count(sr));
        prop_assert_eq!(canon(&rc, sc), canon(&rr, sr));
        prop_assert_eq!(late_dropped(&rc), late_dropped(&rr));
    }
}

/// An operator that *declares* columnar support but rejects every columnar
/// payload — the defect class G016 exists to surface.
struct LyingOp;

impl Operator for LyingOp {
    fn process(
        &mut self,
        _input: usize,
        tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        out.emit(tuple);
        Ok(())
    }

    fn batch_support(&self) -> BatchSupport {
        BatchSupport::Columnar
    }

    fn process_columnar(
        &mut self,
        _input: usize,
        _batch: &mut ColumnarBatch,
    ) -> Result<(), OpError> {
        Err(OpError::ColumnarUnsupported {
            operator: "liar".to_string(),
            detail: "declares columnar support but cannot honor it".to_string(),
        })
    }

    fn name(&self) -> &str {
        "liar"
    }
}

fn lying_graph() -> GraphBuilder {
    let events: Vec<Event> = (0..64)
        .map(|i| Event::new(EventType(0), i, Timestamp::from_minutes(i as i64), 1.0))
        .collect();
    let mut g = GraphBuilder::new();
    let src = g.source("s", events, 1);
    let op = g.unary(src, Exchange::Forward, 1, Box::new(|_| Box::new(LyingOp)));
    let _sink = g.sink(op, Exchange::Forward);
    g
}

/// A columnar-declaring operator that rejects its payload at runtime is a
/// G016 validation error, attributable and typed — not a panic.
#[test]
fn rejected_columnar_payload_surfaces_as_g016() {
    let err = Executor::new(ExecutorConfig {
        columnar: true,
        batch_size: 16,
        operator_chaining: false,
        ..ExecutorConfig::default()
    })
    .run(lying_graph())
    .expect_err("the lying operator must fail the run");
    match err {
        PipelineError::Validation(diags) => {
            assert!(
                diags
                    .iter()
                    .any(|d| d.code == Code::ColumnarPayloadMismatch),
                "expected a G016 diagnostic, got {diags:?}"
            );
        }
        other => panic!("expected a G016 validation error, got {other}"),
    }
}

/// The same operator is perfectly legal on the row plane — its row path
/// works; only the columnar declaration is a lie.
#[test]
fn lying_operator_is_fine_on_the_row_plane() {
    let report = Executor::new(ExecutorConfig {
        columnar: false,
        batch_size: 16,
        operator_chaining: false,
        ..ExecutorConfig::default()
    })
    .run(lying_graph())
    .expect("row plane never exercises the columnar path");
    assert_eq!(report.source_events, 64);
}
