//! The paper's data path: CSV extracts on disk → simple source operator →
//! pattern evaluation (Section 5.1.2). Round-trips a generated workload
//! through CSV files and verifies the pipeline results are unchanged.

use std::collections::HashMap;

use asp::event::EventType;
use cep2asp::exec::{run_pattern_simple, split_by_type};
use cep2asp::MapperOptions;
use sea::pattern::{builders, WindowSpec};
use sea::predicate::Predicate;
use workloads::{csv, generate_qnv, registry, QnvConfig, ValueModel, Q, V};

#[test]
fn csv_round_trip_preserves_pipeline_results() {
    let reg = registry();
    let w = generate_qnv(&QnvConfig {
        sensors: 3,
        minutes: 60,
        seed: 71,
        value_model: ValueModel::Uniform,
    });

    let dir = std::env::temp_dir().join(format!("cep2asp_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let q_path = dir.join("q.csv");
    let v_path = dir.join("v.csv");
    csv::write_stream(&q_path, w.stream(Q), &reg).unwrap();
    csv::write_stream(&v_path, w.stream(V), &reg).unwrap();

    // Read back with a fresh registry, as the benchmark harness would.
    let mut reg2 = registry();
    let q_back = csv::read_stream(&q_path, &mut reg2).unwrap();
    let v_back = csv::read_stream(&v_path, &mut reg2).unwrap();
    let sources: HashMap<EventType, Vec<asp::event::Event>> =
        HashMap::from([(Q, q_back), (V, v_back)]);

    let pattern = builders::seq(
        &[(Q, "Q"), (V, "V")],
        WindowSpec::minutes(5),
        vec![Predicate::same_id(0, 1)],
    );

    let from_csv = run_pattern_simple(&pattern, &MapperOptions::o1(), &sources)
        .unwrap()
        .dedup_matches();
    let from_mem = run_pattern_simple(&pattern, &MapperOptions::o1(), &split_by_type(&w.merged()))
        .unwrap()
        .dedup_matches();

    assert!(!from_mem.is_empty());
    // CSV stores f32 coordinates and full-precision values; match identity
    // (type, id, ts, value) must survive exactly.
    assert_eq!(from_csv.len(), from_mem.len());
    for (a, b) in from_csv.iter().zip(&from_mem) {
        for (x, y) in a.0.iter().zip(&b.0) {
            assert_eq!(x.etype, y.etype);
            assert_eq!(x.id, y.id);
            assert_eq!(x.ts, y.ts);
            assert!((x.value - y.value).abs() < 1e-9);
        }
    }

    std::fs::remove_dir_all(dir).ok();
}
