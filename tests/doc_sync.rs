//! Doc-sync: DESIGN.md's diagnostic-code tables must match the enums.
//!
//! Each stable code family (`Gxxx` graph validation, `Pxxx` plan lints,
//! `Axxx` analyzer diagnostics, `Sxxx` schema/partition-safety, `Mxxx`
//! migration safety) is documented as a markdown table in DESIGN.md
//! ("Static analysis & invariants" / "Static cost model" / "Schema &
//! partition-safety" / "Migration safety").
//! Renaming, adding, or removing a variant without updating the docs —
//! or documenting a code that no longer exists — fails here.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;

/// Collect the code column of every `| X0nn | ... |` table row in
/// DESIGN.md for the given prefix letter.
fn documented_codes(design: &str, prefix: char) -> BTreeSet<String> {
    design
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            let cell = line.strip_prefix('|')?.split('|').next()?.trim();
            let mut chars = cell.chars();
            if chars.next()? != prefix {
                return None;
            }
            let digits: String = chars.collect();
            if digits.len() == 3 && digits.chars().all(|c| c.is_ascii_digit()) {
                Some(cell.to_string())
            } else {
                None
            }
        })
        .collect()
}

fn design_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md");
    std::fs::read_to_string(path).expect("DESIGN.md readable at workspace root")
}

fn assert_in_sync(family: &str, documented: &BTreeSet<String>, code: &BTreeSet<String>) {
    let missing: Vec<&String> = code.difference(documented).collect();
    let stale: Vec<&String> = documented.difference(code).collect();
    assert!(
        missing.is_empty() && stale.is_empty(),
        "{family} code table out of sync with DESIGN.md — \
         undocumented in DESIGN.md: {missing:?}; documented but gone from the enum: {stale:?}"
    );
}

#[test]
fn graph_validator_codes_match_design_md() {
    let code: BTreeSet<String> = asp::validate::Code::ALL
        .iter()
        .map(|c| c.as_str().to_string())
        .collect();
    assert_eq!(
        code.len(),
        asp::validate::Code::ALL.len(),
        "duplicate G code"
    );
    assert_in_sync("Gxxx", &documented_codes(&design_md(), 'G'), &code);
}

#[test]
fn plan_lint_codes_match_design_md() {
    let code: BTreeSet<String> = cep2asp::LintCode::ALL
        .iter()
        .map(|c| c.as_str().to_string())
        .collect();
    assert_eq!(code.len(), cep2asp::LintCode::ALL.len(), "duplicate P code");
    assert_in_sync("Pxxx", &documented_codes(&design_md(), 'P'), &code);
}

#[test]
fn analyzer_codes_match_design_md() {
    let code: BTreeSet<String> = cep2asp::AnalyzeCode::ALL
        .iter()
        .map(|c| c.as_str().to_string())
        .collect();
    assert_eq!(
        code.len(),
        cep2asp::AnalyzeCode::ALL.len(),
        "duplicate A code"
    );
    assert_in_sync("Axxx", &documented_codes(&design_md(), 'A'), &code);
}

#[test]
fn typecheck_codes_match_design_md() {
    let code: BTreeSet<String> = cep2asp::TypeCode::ALL
        .iter()
        .map(|c| c.as_str().to_string())
        .collect();
    assert_eq!(code.len(), cep2asp::TypeCode::ALL.len(), "duplicate S code");
    assert_in_sync("Sxxx", &documented_codes(&design_md(), 'S'), &code);
}

#[test]
fn migrate_codes_match_design_md() {
    let code: BTreeSet<String> = cep2asp::MigrateCode::ALL
        .iter()
        .map(|c| c.as_str().to_string())
        .collect();
    assert_eq!(
        code.len(),
        cep2asp::MigrateCode::ALL.len(),
        "duplicate M code"
    );
    assert_in_sync("Mxxx", &documented_codes(&design_md(), 'M'), &code);
}

#[test]
fn code_tables_are_dense_and_ordered() {
    // Codes are stable identifiers: each family must be X001..X00n with
    // no gaps, in declaration order, so a new code can only be appended.
    let families: [(&str, Vec<String>); 5] = [
        (
            "G",
            asp::validate::Code::ALL
                .iter()
                .map(|c| c.as_str().to_string())
                .collect(),
        ),
        (
            "P",
            cep2asp::LintCode::ALL
                .iter()
                .map(|c| c.as_str().to_string())
                .collect(),
        ),
        (
            "A",
            cep2asp::AnalyzeCode::ALL
                .iter()
                .map(|c| c.as_str().to_string())
                .collect(),
        ),
        (
            "S",
            cep2asp::TypeCode::ALL
                .iter()
                .map(|c| c.as_str().to_string())
                .collect(),
        ),
        (
            "M",
            cep2asp::MigrateCode::ALL
                .iter()
                .map(|c| c.as_str().to_string())
                .collect(),
        ),
    ];
    for (prefix, codes) in families {
        for (i, code) in codes.iter().enumerate() {
            assert_eq!(
                code,
                &format!("{prefix}{:03}", i + 1),
                "{prefix} codes must be dense and in declaration order"
            );
        }
    }
}
