//! Environment-override parsing (`ASP_DATA_PLANE`, `ASP_SHARDS`) and the
//! shard-topology graph check.
//!
//! `ExecutorConfig::default()` used to treat any `ASP_DATA_PLANE` value
//! other than the exact string `"row"` as columnar, so `ROW`, `rows`, or a
//! typo silently selected the wrong plane. Parsing is now strict and
//! case-insensitive, and every unrecognized value is refused by
//! `Executor::run` as diagnostic `G017` instead of being ignored. `G018`
//! guards shard topology: only operator nodes with all-`Hash` inputs may
//! be marked sharded.
//!
//! Environment variables are process-global, so every scenario runs
//! sequentially inside ONE test function — and this file is its own test
//! binary so no parallel test in another file observes the mutations.

#![allow(clippy::unwrap_used)] // test code

use std::sync::Arc;

use asp::error::PipelineError;
use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder};
use asp::operator::FilterOp;
use asp::runtime::{Executor, ExecutorConfig};
use asp::time::Timestamp;
use asp::validate::Code;

fn set(k: &str, v: &str) {
    std::env::set_var(k, v);
}

fn clear(k: &str) {
    std::env::remove_var(k);
}

/// A minimal runnable graph so `Executor::run` reaches (or refuses before)
/// the spawn path.
fn tiny_graph() -> GraphBuilder {
    let mut g = GraphBuilder::new();
    let src = g.source("s", vec![Event::new(EventType(0), 1, Timestamp(0), 1.0)], 1);
    let f = g.nary(
        &[(src, Exchange::Hash)],
        1,
        Box::new(|_| Box::new(FilterOp::new("σ", Arc::new(|_| true)))),
    );
    g.sink(f, Exchange::Rebalance);
    g
}

/// Run a default-config executor and return the G-codes it was refused
/// with (empty = it ran).
fn refused_with() -> Vec<Code> {
    match Executor::new(ExecutorConfig::default()).run(tiny_graph()) {
        Ok(_) => Vec::new(),
        Err(PipelineError::Validation(diags)) => diags.iter().map(|d| d.code).collect(),
        Err(e) => panic!("unexpected error class: {e:?}"),
    }
}

#[test]
fn env_overrides_parse_strictly_and_misconfig_is_g017() {
    // -- ASP_DATA_PLANE: case-insensitive, only `row` / `columnar` --
    clear("ASP_SHARDS");
    for v in ["row", "ROW", "Row"] {
        set("ASP_DATA_PLANE", v);
        let cfg = ExecutorConfig::default();
        assert!(
            !cfg.columnar,
            "ASP_DATA_PLANE={v} must select the row plane"
        );
        assert!(cfg.env_errors.is_empty());
    }
    for v in ["columnar", "COLUMNAR"] {
        set("ASP_DATA_PLANE", v);
        let cfg = ExecutorConfig::default();
        assert!(
            cfg.columnar,
            "ASP_DATA_PLANE={v} must select the columnar plane"
        );
        assert!(cfg.env_errors.is_empty());
    }
    // The historical silent footgun: `rows` is NOT the row plane. It must
    // be refused loudly, not interpreted.
    for v in ["rows", "col", "true", ""] {
        set("ASP_DATA_PLANE", v);
        let cfg = ExecutorConfig::default();
        assert!(
            !cfg.env_errors.is_empty(),
            "ASP_DATA_PLANE={v:?} must be captured as a parse error"
        );
        assert_eq!(refused_with(), vec![Code::InvalidEnvConfig]);
    }
    clear("ASP_DATA_PLANE");

    // -- ASP_SHARDS: an integer ≥ 1 --
    set("ASP_SHARDS", "4");
    assert_eq!(ExecutorConfig::default().shards, Some(4));
    set("ASP_SHARDS", " 8 ");
    assert_eq!(
        ExecutorConfig::default().shards,
        Some(8),
        "whitespace tolerated"
    );
    for v in ["0", "-1", "abc", "2.5", ""] {
        set("ASP_SHARDS", v);
        let cfg = ExecutorConfig::default();
        assert_eq!(cfg.shards, None);
        assert!(
            !cfg.env_errors.is_empty(),
            "ASP_SHARDS={v:?} must be captured as a parse error"
        );
        assert_eq!(refused_with(), vec![Code::InvalidEnvConfig]);
    }

    // Both malformed at once: BOTH errors are listed, not just the first.
    set("ASP_DATA_PLANE", "rows");
    set("ASP_SHARDS", "zero");
    assert_eq!(
        refused_with(),
        vec![Code::InvalidEnvConfig, Code::InvalidEnvConfig]
    );

    // -- Unset: defaults, no errors, pipeline runs --
    clear("ASP_DATA_PLANE");
    clear("ASP_SHARDS");
    let cfg = ExecutorConfig::default();
    assert!(cfg.columnar);
    assert_eq!(cfg.shards, None);
    assert!(cfg.env_errors.is_empty());
    assert!(refused_with().is_empty(), "clean env must run");
}

#[test]
fn sharded_node_topology_is_g018_checked() {
    // A sharded operator fed by a Rebalance edge would scatter one key's
    // tuples across shard instances — refused as G018.
    let mut g = GraphBuilder::new();
    let src = g.source("s", vec![Event::new(EventType(0), 1, Timestamp(0), 1.0)], 1);
    let f = g.nary(
        &[(src, Exchange::Rebalance)],
        2,
        Box::new(|_| Box::new(FilterOp::new("σ", Arc::new(|_| true)))),
    );
    g.shard_node(f);
    g.sink(f, Exchange::Rebalance);
    let cfg = ExecutorConfig {
        shards: None,
        env_errors: Vec::new(),
        ..ExecutorConfig::default()
    };
    match Executor::new(cfg).run(g) {
        Err(PipelineError::Validation(diags)) => {
            assert!(
                diags.iter().any(|d| d.code == Code::InvalidShardedNode),
                "expected G018 among {diags:?}"
            );
        }
        other => panic!("expected G018 refusal, got {other:?}"),
    }
}
