//! Cross-engine semantic equivalence (the correctness claim of Section 4):
//! for every SEA operator, the mapped ASP plan — under every optimization
//! combination — produces the same deduplicated match set as the formal
//! oracle, and as the NFA baseline where FlinkCEP supports the operator
//! (Table 2).

use std::collections::HashMap;

use asp::event::{Attr, Event, EventType};
use asp::runtime::{Executor, ExecutorConfig};
use asp::tuple::MatchKey;
use cep::{BaselineConfig, SelectionPolicy};
use cep2asp::exec::{dedup_sorted, run_pattern, split_by_type};
use cep2asp::{MapperOptions, PhysicalConfig};
use sea::pattern::{builders, Leaf, Pattern, WindowSpec};
use sea::predicate::{CmpOp, Predicate};
use workloads::{generate_aq, generate_qnv, AqConfig, QnvConfig, ValueModel, HUM, PM10, Q, V};

fn qnv(sensors: u32, minutes: i64, seed: u64) -> workloads::Workload {
    generate_qnv(&QnvConfig {
        sensors,
        minutes,
        seed,
        value_model: ValueModel::Uniform,
    })
}

fn oracle_matches(pattern: &Pattern, events: &[Event]) -> Vec<MatchKey> {
    sea::oracle::evaluate(pattern, events)
        .into_iter()
        .map(MatchKey)
        .collect()
}

fn fasp_matches(
    pattern: &Pattern,
    opts: &MapperOptions,
    sources: &HashMap<EventType, Vec<Event>>,
    parallelism: usize,
) -> Vec<MatchKey> {
    let phys = PhysicalConfig {
        parallelism,
        ..Default::default()
    };
    let run =
        run_pattern(pattern, opts, sources, &phys, &ExecutorConfig::default()).expect("mapped run");
    run.dedup_matches()
}

fn fcep_matches(pattern: &Pattern, sources: &HashMap<EventType, Vec<Event>>) -> Vec<MatchKey> {
    let (g, sink) =
        cep::build_baseline(pattern, sources, &BaselineConfig::default()).expect("baseline build");
    let mut report = Executor::new(ExecutorConfig::default())
        .run(g)
        .expect("baseline run");
    dedup_sorted(&report.take_sink(sink))
}

/// All mapping option sets exercised for each pattern.
fn all_opts() -> Vec<(&'static str, MapperOptions)> {
    vec![
        ("FASP", MapperOptions::plain()),
        ("FASP-O1", MapperOptions::o1()),
        ("FASP-O3", MapperOptions::o3()),
        ("FASP-O1+O3", MapperOptions::o1().and_o3()),
    ]
}

fn check_all(pattern: &Pattern, workload: &workloads::Workload, expect_fcep: bool) {
    let merged = workload.merged();
    let sources = split_by_type(&merged);
    let oracle = oracle_matches(pattern, &merged);
    assert!(
        !oracle.is_empty(),
        "test workload must produce matches for {}",
        pattern.name
    );
    for (name, opts) in all_opts() {
        for par in [1usize, 4] {
            let got = fasp_matches(pattern, &opts, &sources, par);
            assert_eq!(
                got, oracle,
                "{name} (par={par}) disagrees with oracle for {}",
                pattern.name
            );
        }
    }
    if expect_fcep {
        let got = fcep_matches(pattern, &sources);
        assert_eq!(
            got, oracle,
            "FCEP disagrees with oracle for {}",
            pattern.name
        );
    }
}

#[test]
fn seq2_equivalence() {
    let p = builders::seq(
        &[(Q, "Q"), (V, "V")],
        WindowSpec::minutes(4),
        vec![Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value)],
    );
    check_all(&p, &qnv(3, 40, 11), true);
}

#[test]
fn seq3_multi_source_equivalence() {
    let mut w = qnv(2, 40, 7);
    w.merge(generate_aq(&AqConfig {
        sensors: 2,
        minutes: 40,
        seed: 7,
        id_offset: 50,
        ..Default::default()
    }));
    let p = builders::seq(
        &[(Q, "Q"), (V, "V"), (PM10, "PM10")],
        WindowSpec::minutes(6),
        vec![Predicate::threshold(2, Attr::Value, CmpOp::Le, 60.0)],
    );
    check_all(&p, &w, true);
}

#[test]
fn and_equivalence_oracle_only() {
    // FCEP does not support AND (Table 2).
    let p = builders::and(
        &[(Q, "Q"), (V, "V")],
        WindowSpec::minutes(3),
        vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 40.0)],
    );
    check_all(&p, &qnv(2, 30, 13), false);
}

#[test]
fn or_equivalence_oracle_only() {
    let p = builders::or(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(3));
    check_all(&p, &qnv(2, 20, 17), false);
}

#[test]
fn iter_equivalence() {
    let p = builders::iter(
        V,
        "V",
        3,
        WindowSpec::minutes(5),
        vec![
            Predicate::cross(0, Attr::Value, CmpOp::Lt, 1, Attr::Value),
            Predicate::cross(1, Attr::Value, CmpOp::Lt, 2, Attr::Value),
        ],
    );
    check_all(&p, &qnv(2, 30, 19), true);
}

#[test]
fn nseq_equivalence() {
    let mut w = qnv(2, 60, 23);
    w.merge(generate_aq(&AqConfig {
        sensors: 2,
        minutes: 60,
        seed: 23,
        id_offset: 80,
        ..Default::default()
    }));
    let p = builders::nseq(
        (Q, "Q"),
        Leaf::new(PM10, "PM10", "n").with_filter(Attr::Value, CmpOp::Gt, 50.0),
        (V, "V"),
        WindowSpec::minutes(5),
        vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 70.0)],
    );
    check_all(&p, &w, true);
}

#[test]
fn nested_seq_of_and_equivalence() {
    use sea::pattern::PatternExpr;
    let mut w = qnv(2, 40, 29);
    w.merge(generate_aq(&AqConfig {
        sensors: 2,
        minutes: 40,
        seed: 29,
        id_offset: 60,
        ..Default::default()
    }));
    let expr = PatternExpr::Seq(vec![
        PatternExpr::Leaf(Leaf::new(Q, "Q", "a")),
        PatternExpr::And(vec![
            PatternExpr::Leaf(Leaf::new(V, "V", "b")),
            PatternExpr::Leaf(Leaf::new(PM10, "PM10", "c")),
        ]),
    ]);
    let p = Pattern::new("seq-of-and", expr, WindowSpec::minutes(5), vec![]).unwrap();
    check_all(&p, &w, false);
}

#[test]
fn seq_with_nested_or_distributes_correctly() {
    use sea::pattern::PatternExpr;
    let mut w = qnv(2, 40, 31);
    w.merge(generate_aq(&AqConfig {
        sensors: 2,
        minutes: 40,
        seed: 31,
        id_offset: 70,
        ..Default::default()
    }));
    let expr = PatternExpr::Seq(vec![
        PatternExpr::Leaf(Leaf::new(Q, "Q", "a")),
        PatternExpr::Or(vec![
            PatternExpr::Leaf(Leaf::new(V, "V", "b")),
            PatternExpr::Leaf(Leaf::new(HUM, "Hum", "c")),
        ]),
    ]);
    let p = Pattern::new("seq-or", expr, WindowSpec::minutes(4), vec![]).unwrap();
    check_all(&p, &w, false);
}

#[test]
fn equi_key_pattern_matches_within_sensor_only() {
    let p = builders::seq(
        &[(Q, "Q"), (V, "V")],
        WindowSpec::minutes(4),
        vec![Predicate::same_id(0, 1)],
    );
    let w = qnv(4, 30, 37);
    check_all(&p, &w, false);
    // Every match pairs events of one sensor.
    let merged = w.merged();
    for m in sea::oracle::evaluate(&p, &merged) {
        assert_eq!(m[0].id, m[1].id);
    }
}

#[test]
fn keyed_fcep_equals_keyed_fasp_for_equi_pattern() {
    let p = builders::seq(
        &[(Q, "Q"), (V, "V")],
        WindowSpec::minutes(4),
        vec![Predicate::same_id(0, 1)],
    );
    let w = qnv(6, 30, 41);
    let sources = split_by_type(&w.merged());
    let oracle = oracle_matches(&p, &w.merged());

    // FCEP with keyBy(id) parallelism.
    let cfg = BaselineConfig {
        keyed: true,
        parallelism: 4,
        ..Default::default()
    };
    let (g, sink) = cep::build_baseline(&p, &sources, &cfg).unwrap();
    let mut report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
    let fcep = dedup_sorted(&report.take_sink(sink));
    assert_eq!(fcep, oracle, "keyed FCEP vs oracle");

    // FASP-O3 with 4 slots.
    let fasp = fasp_matches(&p, &MapperOptions::o3(), &sources, 4);
    assert_eq!(fasp, oracle, "keyed FASP-O3 vs oracle");
}

/// Regression: a keyed join fed by a *global* sub-join must re-key its
/// inputs (the global join's output carries the uniform key). Pattern:
/// only e2–e3 share an id, so join1 (e1 ⋈ e2) is global and join2 is
/// keyed.
#[test]
fn mixed_global_then_keyed_join_is_co_partitioned() {
    let mut w = qnv(4, 40, 59);
    w.merge(generate_aq(&AqConfig {
        sensors: 4,
        minutes: 40,
        seed: 59,
        id_offset: 0,
        ..Default::default()
    }));
    let p = builders::seq(
        &[(Q, "Q"), (V, "V"), (PM10, "PM10")],
        WindowSpec::minutes(6),
        vec![Predicate::same_id(1, 2)],
    );
    check_all(&p, &w, false);
}

/// Regression: transitive equi-keys (`id0=id1 ∧ id1=id2`) key every join
/// of the chain, including reordered ones; results must not change.
#[test]
fn reordered_keyed_join_chain_matches_oracle() {
    let mut w = qnv(4, 40, 61);
    w.merge(generate_aq(&AqConfig {
        sensors: 4,
        minutes: 40,
        seed: 61,
        id_offset: 0,
        ..Default::default()
    }));
    let p = builders::seq(
        &[(Q, "Q"), (V, "V"), (PM10, "PM10")],
        WindowSpec::minutes(8),
        vec![Predicate::same_id(0, 1), Predicate::same_id(1, 2)],
    );
    let merged = w.merged();
    let sources = split_by_type(&merged);
    let oracle = oracle_matches(&p, &merged);
    assert!(!oracle.is_empty());
    for perm in [vec![0, 1, 2], vec![2, 0, 1], vec![1, 2, 0]] {
        for interval in [false, true] {
            let opts = MapperOptions {
                interval_join: interval,
                partition_by_key: true,
                join_order: cep2asp::JoinOrder::Permutation(perm.clone()),
                ..Default::default()
            };
            let got = fasp_matches(&p, &opts, &sources, 4);
            assert_eq!(got, oracle, "perm {perm:?} interval={interval}");
        }
    }
}

#[test]
fn kleene_plus_o2_window_counts_match_oracle() {
    let p = builders::kleene_plus(V, "V", 4, WindowSpec::minutes(5));
    let w = qnv(1, 60, 43);
    let merged = w.merged();
    let sources = split_by_type(&merged);
    let expected = sea::oracle::kleene_qualifying_windows(&p, &merged);
    assert!(expected > 0);
    let phys = PhysicalConfig::default();
    let run = run_pattern(
        &p,
        &MapperOptions::o2(),
        &sources,
        &phys,
        &ExecutorConfig::default(),
    )
    .unwrap();
    assert_eq!(run.raw_count() as usize, expected, "qualifying windows");
    // Each emitted window tuple carries the count, which must be ≥ m.
    for t in run.raw_matches() {
        assert!(t.agg.unwrap() >= 4.0);
    }
}

#[test]
fn exact_iter_o2_is_superset_of_exact_semantics() {
    // O2 approximates ITER_m by count ≥ m: every window with an exact-m
    // oracle match must be flagged by the aggregation.
    let p = builders::iter(V, "V", 3, WindowSpec::minutes(5), vec![]);
    let w = qnv(1, 40, 47);
    let merged = w.merged();
    let sources = split_by_type(&merged);
    let exact_windows = sea::oracle::evaluate_per_window(&p, &merged).len();
    let run = run_pattern(
        &p,
        &MapperOptions::o2(),
        &sources,
        &PhysicalConfig::default(),
        &ExecutorConfig::default(),
    )
    .unwrap();
    assert!(
        run.raw_count() as usize >= exact_windows,
        "O2 windows {} < exact windows {exact_windows}",
        run.raw_count()
    );
}

#[test]
fn stam_policy_is_superset_of_stnm_and_strict_in_pipeline() {
    let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
    let w = qnv(2, 30, 53);
    let sources = split_by_type(&w.merged());
    let run = |policy| {
        let cfg = BaselineConfig {
            policy,
            ..Default::default()
        };
        let (g, sink) = cep::build_baseline(&p, &sources, &cfg).unwrap();
        let mut report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
        dedup_sorted(&report.take_sink(sink))
    };
    let stam = run(SelectionPolicy::SkipTillAnyMatch);
    let stnm = run(SelectionPolicy::SkipTillNextMatch);
    let strict = run(SelectionPolicy::StrictContiguity);
    assert!(!stam.is_empty());
    for m in &stnm {
        assert!(stam.contains(m), "stnm ⊄ stam");
    }
    for m in &strict {
        assert!(stam.contains(m), "strict ⊄ stam");
    }
    assert!(stnm.len() <= stam.len());
    assert!(strict.len() <= stnm.len() || strict.len() <= stam.len());
}
