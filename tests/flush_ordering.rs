//! Flush-ordering determinism regression test.
//!
//! The cross-plane oracle used to flake because the wall-clock
//! `idle_flush` timer raced the owed-watermark settlement in the sender
//! buffers: depending on when a soft flush fired, a watermark could
//! overtake buffered tuples on one plane but not the other, shifting
//! late-drop verdicts between runs. The fix pins watermark/tuple relative
//! order positionally in the send buffer, so the verdict stream is a pure
//! function of the input — independent of flush cadence, data plane, and
//! batch size.
//!
//! This test pins exactly that: one disordered keyed-join input (with
//! genuine late data beyond the watermark lag) executed across a grid of
//! `idle_flush` cadences × data planes × batch sizes must produce the
//! identical sink multiset AND the identical late-drop count. The 1 µs
//! cadence makes soft flushes fire constantly (maximal raciness), the 1 s
//! cadence effectively disables them; `batch_size == 1` additionally
//! exercises the automatic row-plane fallback.

#![allow(clippy::unwrap_used)] // test code

use std::time::Duration as StdDuration;

use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder, SinkId, SourceConfig};
use asp::operator::{cross_join, WindowJoinOp};
use asp::runtime::{Executor, ExecutorConfig, RunReport};
use asp::time::{Duration, Timestamp};
use asp::tuple::{MatchKey, TsRule};
use asp::window::SlidingWindows;

/// Deterministic xorshift so the disorder pattern is fixed forever —
/// this is a regression pin, not a fuzz test.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// One side: 400 events, timestamps wandering ±3 min around a monotone
/// base while the watermark lag is only 1 min — a fixed subset is
/// genuinely late and must be dropped identically in every configuration.
fn side(etype: u16, seed: u64) -> Vec<Event> {
    let mut rng = Rng(seed);
    (0..400)
        .map(|i| {
            let base = i as i64 * 20_000;
            let jitter = (rng.next() % 360_000) as i64 - 180_000;
            let key = (rng.next() % 16) as u32;
            Event::new(
                EventType(etype),
                key,
                Timestamp((base + jitter).max(0)),
                i as f64,
            )
        })
        .collect()
}

fn run(columnar: bool, batch_size: usize, idle_flush: StdDuration) -> (RunReport, SinkId) {
    let mut g = GraphBuilder::new();
    let src = |etype: u16, seed: u64| {
        SourceConfig::new(side(etype, seed))
            .with_watermark_every(8)
            .with_watermark_lag(Duration::from_minutes(1))
    };
    let l = g.source_with("l", src(0, 0x9E37_79B9), 1);
    let r = g.source_with("r", src(1, 0xDEAD_BEEF), 1);
    let join = g.nary(
        &[(l, Exchange::Hash), (r, Exchange::Hash)],
        1,
        Box::new(|_| {
            Box::new(WindowJoinOp::new(
                "⋈",
                SlidingWindows::new(Duration::from_minutes(4), Duration::from_minutes(2)),
                cross_join(),
                TsRule::Max,
            ))
        }),
    );
    let sink = g.sink(join, Exchange::Rebalance);
    let report = Executor::new(ExecutorConfig {
        columnar,
        batch_size,
        idle_flush,
        shards: None,
        env_errors: Vec::new(),
        ..ExecutorConfig::default()
    })
    .run(g)
    .expect("flush-ordering pipeline runs to completion");
    (report, sink)
}

type CanonRow = (u64, i64, MatchKey);

fn canon(report: &RunReport, sink: SinkId) -> Vec<CanonRow> {
    let mut out: Vec<_> = report
        .sink(sink)
        .iter()
        .map(|t| (t.key, t.ts.millis(), t.match_key()))
        .collect();
    out.sort();
    out
}

fn late(report: &RunReport) -> u64 {
    report.nodes.iter().map(|n| n.late_dropped).sum()
}

#[test]
fn sink_and_late_drops_are_invariant_to_flush_cadence_plane_and_batching() {
    let (ref_report, ref_sink) = run(false, 64, StdDuration::from_millis(5));
    let want = canon(&ref_report, ref_sink);
    let want_late = late(&ref_report);
    assert!(!want.is_empty(), "reference run must produce output");
    assert!(want_late > 0, "scenario must contain genuine late data");

    for columnar in [false, true] {
        for batch_size in [1usize, 7, 64] {
            for idle_flush in [
                StdDuration::from_micros(1),
                StdDuration::from_millis(5),
                StdDuration::from_secs(1),
            ] {
                let (report, sink) = run(columnar, batch_size, idle_flush);
                let ctx = format!(
                    "columnar={columnar} batch_size={batch_size} idle_flush={idle_flush:?}"
                );
                assert_eq!(canon(&report, sink), want, "sink diverged at {ctx}");
                assert_eq!(late(&report), want_late, "late drops diverged at {ctx}");
            }
        }
    }
}
