//! Semantic oracle for the shared-subplan optimizer: random batches of
//! 2–8 patterns run through [`cep2asp::run_patterns_with`] — which interns
//! structurally equal subtrees into one DAG and fans shared results out to
//! every consumer — must produce, for **every** pattern in the batch,
//! exactly the deduplicated matches of that pattern's solo run. The solo
//! run never sees the sharing pass, so any divergence is a sharing bug by
//! construction: a canonical key that merged two behaviorally different
//! subtrees, a fan-out edge that dropped or duplicated a consumer, or
//! stats/watermark plumbing that leaked between patterns.
//!
//! The grid multiplies random pattern batches by both data planes
//! (columnar and row) and micro-batch sizes {1, 64}, because the `Arc`ed
//! broadcast fast path only engages on the columnar plane at full batches
//! — the other cells pin the fallback paths. Each case also checks the
//! accounting contract: the number of source events the runtime actually
//! ingested equals the DAG's static prediction
//! ([`cep2asp::ShareReport::expected_source_events`]), i.e. merged scans
//! really were lowered once.

#![allow(clippy::unwrap_used)] // test code

use asp::event::{Attr, Event, EventType};
use asp::runtime::ExecutorConfig;
use asp::time::Timestamp;
use cep2asp::exec::{run_pattern, split_by_type};
use cep2asp::{
    run_patterns_with, shared_catalog, MapperOptions, MultiOptions, PatternJob, PhysicalConfig,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sea::pattern::{builders, Pattern, WindowSpec};
use sea::predicate::{CmpOp, Predicate};

/// One generatable pattern: shape, adjacent type pair, window, and
/// optional predicates drawn from small sets so batches overlap heavily
/// (the regime the sharing pass exists for).
#[derive(Debug, Clone)]
struct PatSpec {
    /// false = SEQ, true = AND.
    and: bool,
    /// First leaf type (0..3); second is the next type mod 3.
    first: u16,
    window_minutes: i64,
    /// Optional value threshold on the first leaf: (Le?, constant).
    threshold: Option<(bool, u32)>,
    /// Equi-join on ids (enables O3 keying for AND shapes).
    same_id: bool,
}

impl PatSpec {
    fn build(&self) -> (Pattern, MapperOptions) {
        let a = EventType(self.first);
        let b = EventType((self.first + 1) % 3);
        let mut preds = Vec::new();
        if let Some((le, c)) = self.threshold {
            let op = if le { CmpOp::Le } else { CmpOp::Ge };
            preds.push(Predicate::threshold(0, Attr::Value, op, c as f64));
        }
        if self.same_id {
            preds.push(Predicate::same_id(0, 1));
        }
        let window = WindowSpec::minutes(self.window_minutes);
        let leaves = [(a, "A"), (b, "B")];
        let (pattern, opts) = if self.and {
            let opts = if self.same_id {
                MapperOptions::o1().and_o3()
            } else {
                MapperOptions::o1()
            };
            (builders::and(&leaves, window, preds), opts)
        } else {
            (builders::seq(&leaves, window, preds), MapperOptions::o1())
        };
        (pattern, opts)
    }
}

fn arb_pat() -> impl Strategy<Value = PatSpec> {
    (
        any::<bool>(),
        0u16..3,
        2i64..7,
        prop_oneof![
            Just(None),
            (any::<bool>(), prop_oneof![Just(30u32), Just(50), Just(70)]).prop_map(Some),
        ],
        any::<bool>(),
    )
        .prop_map(|(and, first, window_minutes, threshold, same_id)| PatSpec {
            and,
            first,
            window_minutes,
            threshold,
            same_id,
        })
}

fn arb_event() -> impl Strategy<Value = Event> {
    (0u16..3, 0u32..3, 0i64..45, 0u32..100).prop_map(|(t, id, minute, v)| {
        Event::new(EventType(t), id, Timestamp::from_minutes(minute), v as f64)
    })
}

#[derive(Debug, Clone)]
struct Case {
    pats: Vec<PatSpec>,
    events: Vec<Event>,
    columnar: bool,
    batch_size: usize,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec(arb_pat(), 2..9),
        proptest::collection::vec(arb_event(), 30..120),
        any::<bool>(),
        prop_oneof![Just(1usize), Just(64)],
    )
        .prop_map(|(pats, events, columnar, batch_size)| Case {
            pats,
            events,
            columnar,
            batch_size,
        })
}

fn check_case(case: &Case) -> Result<(), TestCaseError> {
    let sources = split_by_type(&case.events);
    let built: Vec<(Pattern, MapperOptions)> = case.pats.iter().map(PatSpec::build).collect();
    let jobs: Vec<PatternJob> = built
        .iter()
        .enumerate()
        .map(|(i, (p, o))| PatternJob::new(format!("p{i}"), p.clone(), o.clone()))
        .collect();
    let exec = ExecutorConfig {
        columnar: case.columnar,
        batch_size: case.batch_size,
        ..ExecutorConfig::default()
    };
    let phys = PhysicalConfig::default();
    let multi = run_patterns_with(
        &jobs,
        &shared_catalog(&sources),
        &phys,
        &exec,
        &MultiOptions::default(),
    )
    .expect("multi run succeeds");

    // Accounting: the runtime ingested exactly what the shared DAG's
    // lowered scans predict — no scan ran twice, none was skipped.
    prop_assert_eq!(
        multi.report.source_events,
        multi.share.expected_source_events,
        "source volume must match the DAG prediction: {:?}",
        multi.share
    );

    // Semantics: each pattern's canonical matches equal its solo run.
    for (i, (pattern, opts)) in built.iter().enumerate() {
        let solo = run_pattern(pattern, opts, &sources, &phys, &exec).expect("solo run succeeds");
        prop_assert_eq!(
            multi.dedup_matches(&format!("p{i}")),
            solo.dedup_matches(),
            "pattern p{} diverged under sharing ({:?})",
            i,
            case.pats[i]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// THE sharing oracle: every pattern of a random shared batch agrees
    /// with its solo run, on both data planes at batch sizes {1, 64}.
    #[test]
    fn shared_batches_agree_with_solo_runs(case in arb_case()) {
        check_case(&case)?;
    }
}

/// Deterministic sharing × sharding pin: two keyed (O3) patterns whose
/// scans and join merge, lowered with shard groups — the merged DAG must
/// still honor the typechecker's per-node shard-safety verdicts, and a
/// third non-identical pattern keeps partial overlap in play.
#[test]
fn sharing_composes_with_sharded_keyed_joins() {
    let events: Vec<Event> = (0..60i64)
        .flat_map(|m| {
            (0..3u32).flat_map(move |id| {
                [
                    Event::new(
                        EventType(0),
                        id,
                        Timestamp::from_minutes(m),
                        ((m * 11 + id as i64) % 100) as f64,
                    ),
                    Event::new(
                        EventType(1),
                        id,
                        Timestamp::from_minutes(m),
                        ((m * 17 + id as i64) % 100) as f64,
                    ),
                ]
            })
        })
        .collect();
    let sources = split_by_type(&events);
    let keyed = builders::and(
        &[(EventType(0), "A"), (EventType(1), "B")],
        WindowSpec::minutes(4),
        vec![Predicate::same_id(0, 1)],
    );
    let wider = builders::and(
        &[(EventType(0), "A"), (EventType(1), "B")],
        WindowSpec::minutes(6),
        vec![Predicate::same_id(0, 1)],
    );
    let opts = MapperOptions::o1().and_o3();
    let jobs = vec![
        PatternJob::new("k1", keyed.clone(), opts.clone()),
        PatternJob::new("k2", keyed.clone(), opts.clone()),
        PatternJob::new("wide", wider.clone(), opts.clone()),
    ];
    let phys = PhysicalConfig {
        shards: Some(2),
        ..PhysicalConfig::default()
    };
    let exec = ExecutorConfig::default();
    let multi = run_patterns_with(
        &jobs,
        &shared_catalog(&sources),
        &phys,
        &exec,
        &MultiOptions::default(),
    )
    .expect("sharded multi run succeeds");

    // k1/k2 are identical: their whole pipeline (scans + keyed join)
    // interns to one subtree; "wide" shares the scans only.
    assert!(multi.share.scans_saved() >= 3, "{:?}", multi.share);
    assert_eq!(
        multi.report.source_events,
        multi.share.expected_source_events
    );
    assert_eq!(multi.dedup_matches("k1"), multi.dedup_matches("k2"));
    for (name, pattern) in [("k1", &keyed), ("wide", &wider)] {
        let solo = run_pattern(pattern, &opts, &sources, &phys, &exec).unwrap();
        assert_eq!(
            multi.dedup_matches(name),
            solo.dedup_matches(),
            "{name} diverged under sharing+sharding"
        );
        assert!(
            !multi.dedup_matches(name).is_empty(),
            "{name} found matches"
        );
    }
}
