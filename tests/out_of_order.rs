//! Out-of-order stream handling: with bounded-out-of-orderness watermarks
//! (paper Section 2, time model — event time is exactly what makes ASP
//! robust to disorder), both engines must produce the same matches on a
//! disordered arrival sequence as on the sorted stream.

use std::collections::HashMap;

use asp::event::{Attr, Event, EventType};
use asp::runtime::{Executor, ExecutorConfig};
use asp::time::Duration;
use asp::tuple::MatchKey;
use cep::BaselineConfig;
use cep2asp::exec::{dedup_sorted, run_pattern};
use cep2asp::{MapperOptions, PhysicalConfig};
use sea::pattern::{builders, Leaf, Pattern, WindowSpec};
use sea::predicate::{CmpOp, Predicate};
use workloads::{generate_qnv, QnvConfig, ValueModel, Workload, PM10, Q, V};

const DELAY_MIN: i64 = 5;

fn disordered(seed: u64) -> (Workload, Workload) {
    let mut w = generate_qnv(&QnvConfig {
        sensors: 3,
        minutes: 60,
        seed,
        value_model: ValueModel::Uniform,
    });
    w.merge(workloads::generate_aq(&workloads::AqConfig {
        sensors: 3,
        minutes: 60,
        seed,
        value_model: ValueModel::Uniform,
        id_offset: 0,
    }));
    let shuffled = w
        .clone()
        .with_disorder(DELAY_MIN * asp::time::MINUTE_MS, seed ^ 7);
    (w, shuffled)
}

fn oracle(p: &Pattern, w: &Workload) -> Vec<MatchKey> {
    sea::oracle::evaluate(p, &w.merged())
        .into_iter()
        .map(MatchKey)
        .collect()
}

fn fasp_disordered(
    p: &Pattern,
    opts: &MapperOptions,
    sources: &HashMap<EventType, Vec<Event>>,
    lag_min: i64,
) -> Vec<MatchKey> {
    let phys = PhysicalConfig {
        watermark_lag: Duration::from_minutes(lag_min),
        watermark_every: 16, // frequent watermarks stress the lag logic
        ..Default::default()
    };
    run_pattern(p, opts, sources, &phys, &ExecutorConfig::default())
        .expect("mapped run")
        .dedup_matches()
}

fn fcep_disordered(
    p: &Pattern,
    sources: &HashMap<EventType, Vec<Event>>,
    lag_min: i64,
) -> Vec<MatchKey> {
    let cfg = BaselineConfig {
        watermark_lag: Duration::from_minutes(lag_min),
        watermark_every: 16,
        ..Default::default()
    };
    let (g, sink) = cep::build_baseline(p, sources, &cfg).expect("baseline");
    let mut report = Executor::new(ExecutorConfig::default())
        .run(g)
        .expect("run");
    dedup_sorted(&report.take_sink(sink))
}

#[test]
fn seq_is_disorder_tolerant_with_sufficient_lag() {
    let (sorted, shuffled) = disordered(11);
    let p = builders::seq(
        &[(Q, "Q"), (V, "V")],
        WindowSpec::minutes(6),
        vec![Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value)],
    );
    let want = oracle(&p, &sorted);
    assert!(!want.is_empty());
    for (name, opts) in [
        ("plain", MapperOptions::plain()),
        ("O1", MapperOptions::o1()),
    ] {
        let got = fasp_disordered(&p, &opts, &shuffled.streams, DELAY_MIN);
        assert_eq!(got, want, "FASP {name} under disorder");
    }
    let got = fcep_disordered(&p, &shuffled.streams, DELAY_MIN);
    assert_eq!(got, want, "FCEP under disorder");
}

#[test]
fn nseq_is_disorder_tolerant() {
    let (sorted, shuffled) = disordered(13);
    let p = builders::nseq(
        (Q, "Q"),
        Leaf::new(PM10, "PM10", "n").with_filter(Attr::Value, CmpOp::Gt, 40.0),
        (V, "V"),
        WindowSpec::minutes(6),
        vec![],
    );
    let want = oracle(&p, &sorted);
    assert!(!want.is_empty());
    let got = fasp_disordered(&p, &MapperOptions::o1(), &shuffled.streams, DELAY_MIN);
    assert_eq!(got, want, "FASP NSEQ under disorder");
    let got = fcep_disordered(&p, &shuffled.streams, DELAY_MIN);
    assert_eq!(got, want, "FCEP NSEQ under disorder");
}

#[test]
fn iter_is_disorder_tolerant() {
    let (sorted, shuffled) = disordered(17);
    let p = builders::iter(
        V,
        "V",
        2,
        WindowSpec::minutes(4),
        vec![Predicate::cross(0, Attr::Value, CmpOp::Lt, 1, Attr::Value)],
    );
    let want = oracle(&p, &sorted);
    assert!(!want.is_empty());
    let got = fasp_disordered(&p, &MapperOptions::plain(), &shuffled.streams, DELAY_MIN);
    assert_eq!(got, want);
}

/// Insufficient lag loses (only) the straggling matches: the run still
/// completes, never crashes, and drops are visible in the node stats.
#[test]
fn insufficient_lag_drops_late_events_gracefully() {
    let (sorted, shuffled) = disordered(19);
    let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(6), vec![]);
    let want = oracle(&p, &sorted);
    let phys = PhysicalConfig {
        watermark_lag: Duration::ZERO, // pretend the stream were in order
        watermark_every: 16,
        ..Default::default()
    };
    let run = run_pattern(
        &p,
        &MapperOptions::o1(),
        &shuffled.streams,
        &phys,
        &ExecutorConfig::default(),
    )
    .expect("run completes despite late data");
    let got = run.dedup_matches();
    assert!(got.len() <= want.len(), "never invents matches");
    assert!(
        got.len() < want.len(),
        "five-minute disorder with zero lag must lose something"
    );
    for m in &got {
        assert!(want.contains(m), "every found match is genuine");
    }
    let dropped: u64 = run.report.nodes.iter().map(|n| n.late_dropped).sum();
    assert!(dropped > 0, "late drops are accounted");
}

/// The late-drop safety net can be disabled; ts-order-insensitive
/// operators (interval joins probe both directions) then still find
/// everything even with zero lag.
#[test]
fn interval_join_without_drop_late_recovers_stragglers() {
    let (sorted, shuffled) = disordered(23);
    let p = builders::and(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(6), vec![]);
    let want = oracle(&p, &sorted);
    let phys = PhysicalConfig {
        watermark_lag: Duration::ZERO,
        ..Default::default()
    };
    let exec = ExecutorConfig {
        drop_late: false,
        ..Default::default()
    };
    let run = run_pattern(&p, &MapperOptions::o1(), &shuffled.streams, &phys, &exec).expect("run");
    // The interval join buffers by bounds, not firing order, so stragglers
    // within the (un-asserted) disorder still pair up — as long as
    // eviction hasn't passed them. With disorder ≤ 5 min ≪ W = 6 min this
    // holds for the conjunction's symmetric bounds.
    assert_eq!(run.dedup_matches(), want);
}
