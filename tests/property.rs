//! Property-based cross-engine testing: random streams × random patterns,
//! all three evaluators must agree on the deduplicated match set.
//!
//! This is the strongest correctness evidence in the repository: the
//! oracle implements the paper's formal semantics (Equations 3–14)
//! literally; the NFA engine and the mapped ASP plans are independent
//! implementations with entirely different execution models (stateful
//! automaton vs decomposed window joins), so agreement across thousands of
//! random cases pins the mapping's semantic-equivalence claim.

use std::collections::HashMap;

use asp::event::{Attr, Event, EventType};
use asp::runtime::{Executor, ExecutorConfig};
use asp::time::Timestamp;
use asp::tuple::MatchKey;
use cep::BaselineConfig;
use cep2asp::exec::{dedup_sorted, run_pattern, split_by_type};
use cep2asp::{MapperOptions, PhysicalConfig};
use proptest::prelude::*;
use sea::pattern::{builders, Leaf, Pattern, WindowSpec};
use sea::predicate::{CmpOp, Predicate};

const TYPES: [(EventType, &str); 3] = [
    (EventType(0), "A"),
    (EventType(1), "B"),
    (EventType(2), "C"),
];

fn arb_event() -> impl Strategy<Value = Event> {
    (0u16..3, 0u32..3, 0i64..40, 0u32..100).prop_map(|(t, id, minute, v)| {
        Event::new(EventType(t), id, Timestamp::from_minutes(minute), v as f64)
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(arb_event(), 5..60)
}

#[derive(Debug, Clone)]
enum PatternShape {
    Seq(Vec<usize>),
    And(Vec<usize>),
    Iter {
        t: usize,
        m: usize,
        pairwise: bool,
    },
    Nseq {
        first: usize,
        absent: usize,
        last: usize,
    },
}

fn arb_shape() -> impl Strategy<Value = PatternShape> {
    prop_oneof![
        proptest::collection::vec(0usize..3, 2..4).prop_map(PatternShape::Seq),
        proptest::collection::vec(0usize..3, 2..3).prop_map(PatternShape::And),
        (0usize..3, 2usize..4, any::<bool>()).prop_map(|(t, m, pairwise)| PatternShape::Iter {
            t,
            m,
            pairwise
        }),
        (0usize..3, 0usize..3, 0usize..3)
            .prop_filter("absent must differ from first", |(f, a, _)| f != a)
            .prop_map(|(first, absent, last)| PatternShape::Nseq {
                first,
                absent,
                last
            }),
    ]
}

fn make_pattern(shape: &PatternShape, w_minutes: i64, threshold: f64) -> Pattern {
    let w = WindowSpec::minutes(w_minutes);
    match shape {
        PatternShape::Seq(ts) => {
            let types: Vec<_> = ts.iter().map(|&i| TYPES[i]).collect();
            let preds = vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, threshold)];
            builders::seq(&types, w, preds)
        }
        PatternShape::And(ts) => {
            let types: Vec<_> = ts.iter().map(|&i| TYPES[i]).collect();
            builders::and(&types, w, vec![])
        }
        PatternShape::Iter { t, m, pairwise } => {
            let (etype, name) = TYPES[*t];
            let preds = if *pairwise {
                (0..m - 1)
                    .map(|i| Predicate::cross(i, Attr::Value, CmpOp::Lt, i + 1, Attr::Value))
                    .collect()
            } else {
                vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, threshold)]
            };
            builders::iter(etype, name, *m, w, preds)
        }
        PatternShape::Nseq {
            first,
            absent,
            last,
        } => builders::nseq(
            TYPES[*first],
            Leaf::new(TYPES[*absent].0, TYPES[*absent].1, "n").with_filter(
                Attr::Value,
                CmpOp::Gt,
                threshold,
            ),
            TYPES[*last],
            w,
            vec![],
        ),
    }
}

fn oracle_matches(p: &Pattern, events: &[Event]) -> Vec<MatchKey> {
    sea::oracle::evaluate(p, events)
        .into_iter()
        .map(MatchKey)
        .collect()
}

fn fasp_matches(
    p: &Pattern,
    opts: &MapperOptions,
    sources: &HashMap<EventType, Vec<Event>>,
) -> Vec<MatchKey> {
    run_pattern(
        p,
        opts,
        sources,
        &PhysicalConfig::default(),
        &ExecutorConfig::default(),
    )
    .expect("mapped run")
    .dedup_matches()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
    })]

    /// The mapped plan (plain, O1, O3, O1+O3) equals the formal oracle on
    /// random streams and patterns; optionally with a random equi-key
    /// predicate so keyed, global, and mixed join chains are all hit.
    #[test]
    fn fasp_equals_oracle(
        events in arb_stream(),
        shape in arb_shape(),
        w in 2i64..8,
        threshold in 10.0f64..90.0,
        add_key in any::<bool>(),
    ) {
        let mut pattern = make_pattern(&shape, w, threshold);
        if add_key && pattern.positions() >= 2 {
            let mut preds = pattern.predicates.clone();
            preds.push(Predicate::same_id(pattern.positions() - 2, pattern.positions() - 1));
            pattern = Pattern::new(
                pattern.name.clone(), pattern.expr.clone(), pattern.window, preds,
            ).expect("valid");
        }
        let sources = split_by_type(&events);
        let oracle = oracle_matches(&pattern, &events);
        for (label, opts) in [
            ("plain", MapperOptions::plain()),
            ("O1", MapperOptions::o1()),
            ("O3", MapperOptions::o3()),
            ("O1+O3", MapperOptions::o1().and_o3()),
        ] {
            let got = fasp_matches(&pattern, &opts, &sources);
            prop_assert_eq!(&got, &oracle, "{} mapping vs oracle", label);
        }
    }

    /// The NFA baseline equals the oracle for the operators it supports.
    #[test]
    fn fcep_equals_oracle(
        events in arb_stream(),
        shape in arb_shape(),
        w in 2i64..8,
        threshold in 10.0f64..90.0,
    ) {
        let pattern = make_pattern(&shape, w, threshold);
        if matches!(shape, PatternShape::And(_)) {
            return Ok(()); // FCEP does not support conjunction (Table 2).
        }
        let sources = split_by_type(&events);
        let oracle = oracle_matches(&pattern, &events);
        let (g, sink) = cep::build_baseline(&pattern, &sources, &BaselineConfig::default())
            .expect("supported pattern");
        let mut report = Executor::new(ExecutorConfig::default()).run(g).expect("run");
        let fcep = dedup_sorted(&report.take_sink(sink));
        prop_assert_eq!(&fcep, &oracle);
    }

    /// Interval joins are duplicate-free while producing the same match
    /// set (the O1 claim of Section 4.3.1).
    #[test]
    fn interval_join_is_duplicate_free(
        events in arb_stream(),
        ts in proptest::collection::vec(0usize..3, 2..3),
        w in 2i64..8,
    ) {
        // Byte-identical events would produce legitimately identical
        // matches that the dedup view cannot distinguish from window
        // duplicates; the claim under test is about *window overlap* only.
        let mut events = events;
        events.sort_by_key(|e| (e.ts, e.etype, e.id, e.value.to_bits()));
        events.dedup();
        let types: Vec<_> = ts.iter().map(|&i| TYPES[i]).collect();
        let pattern = builders::seq(&types, WindowSpec::minutes(w), vec![]);
        let sources = split_by_type(&events);
        let run = run_pattern(
            &pattern,
            &MapperOptions::o1(),
            &sources,
            &PhysicalConfig::default(),
            &ExecutorConfig::default(),
        ).expect("o1 run");
        let raw = run.raw_count() as usize;
        let dedup = run.dedup_matches().len();
        prop_assert_eq!(raw, dedup, "O1 must not emit duplicates");
    }

    /// Theorem 1+2 as a property: with slide = stream granularity, the
    /// windowed evaluation loses no match and invents none — encoded by
    /// comparing the oracle against a direct span-based enumerator for
    /// binary sequences.
    #[test]
    fn window_discretization_preserves_matches(
        events in arb_stream(),
        w in 2i64..8,
    ) {
        let pattern = builders::seq(
            &[TYPES[0], TYPES[1]],
            WindowSpec::minutes(w),
            vec![],
        );
        let oracle = oracle_matches(&pattern, &events);
        // Direct enumeration from the definition: pairs (a, b) with
        // a ∈ A, b ∈ B, a.ts < b.ts, b.ts − a.ts < W.
        let w_ms = w * asp::time::MINUTE_MS;
        let mut direct: Vec<MatchKey> = Vec::new();
        for a in events.iter().filter(|e| e.etype == TYPES[0].0) {
            for b in events.iter().filter(|e| e.etype == TYPES[1].0) {
                if a.ts < b.ts && (b.ts - a.ts).millis() < w_ms {
                    direct.push(MatchKey(vec![*a, *b]));
                }
            }
        }
        direct.sort();
        direct.dedup();
        prop_assert_eq!(oracle, direct);
    }

    /// Mirror of the graph-validator property for the plan layer: every
    /// plan `translate` produces — across plain, O1, O2, and O3 — is clean
    /// under [`cep2asp::lint_plan`]. (The optimizations rewrite windowing,
    /// partitioning, and aggregation; none may break a plan invariant.)
    #[test]
    fn translated_plans_are_lint_clean(
        shape in arb_shape(),
        w in 2i64..8,
        threshold in 10.0f64..90.0,
        add_key in any::<bool>(),
    ) {
        let mut pattern = make_pattern(&shape, w, threshold);
        if add_key && pattern.positions() >= 2 {
            let mut preds = pattern.predicates.clone();
            preds.push(Predicate::same_id(pattern.positions() - 2, pattern.positions() - 1));
            pattern = Pattern::new(
                pattern.name.clone(), pattern.expr.clone(), pattern.window, preds,
            ).expect("valid");
        }
        for (label, opts) in [
            ("plain", MapperOptions::plain()),
            ("O1", MapperOptions::o1()),
            ("O2", MapperOptions::o2()),
            ("O3", MapperOptions::o3()),
            ("O1+O3", MapperOptions::o1().and_o3()),
        ] {
            let plan = cep2asp::translate(&pattern, &opts).expect("translates");
            let lints = cep2asp::lint_plan(&plan);
            prop_assert!(
                lints.is_empty(),
                "{} plan fails lint: {}",
                label,
                lints.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; "),
            );
        }
    }
}
