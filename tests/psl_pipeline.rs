//! End-to-end through the declarative layer: PSL text → parser → mapping
//! → execution, compared against the oracle and the NFA baseline — the
//! full "declarative pattern to execution pipeline" path of the paper's
//! future-work vision.

use asp::runtime::{Executor, ExecutorConfig};
use asp::tuple::MatchKey;
use cep::BaselineConfig;
use cep2asp::exec::{dedup_sorted, run_pattern_simple, split_by_type};
use cep2asp::{auto_options, StreamStats};
use workloads::{generate_aq, generate_qnv, AqConfig, QnvConfig, ValueModel, Workload};

fn workload(seed: u64) -> Workload {
    let mut w = generate_qnv(&QnvConfig {
        sensors: 3,
        minutes: 120,
        seed,
        value_model: ValueModel::Uniform,
    });
    w.merge(generate_aq(&AqConfig {
        sensors: 3,
        minutes: 120,
        seed,
        value_model: ValueModel::Uniform,
        id_offset: 0,
    }));
    w
}

fn check_psl(spec: &str, seed: u64, fcep_supported: bool) -> usize {
    let mut types = workloads::registry();
    let pattern = sea::parse(spec, &mut types).unwrap_or_else(|e| panic!("{e}\n{spec}"));
    let w = workload(seed);
    let merged = w.merged();
    let sources = split_by_type(&merged);

    let oracle: Vec<MatchKey> = sea::oracle::evaluate(&pattern, &merged)
        .into_iter()
        .map(MatchKey)
        .collect();

    let stats = StreamStats::from_sources(&sources);
    let opts = auto_options(&pattern, &stats);
    let run = run_pattern_simple(&pattern, &opts, &sources).expect("mapped run");
    assert_eq!(
        run.dedup_matches(),
        oracle,
        "FASP(auto) vs oracle for:\n{spec}"
    );

    if fcep_supported {
        let (g, sink) =
            cep::build_baseline(&pattern, &sources, &BaselineConfig::default()).expect("baseline");
        let mut report = Executor::new(ExecutorConfig::default())
            .run(g)
            .expect("run");
        assert_eq!(
            dedup_sorted(&report.take_sink(sink)),
            oracle,
            "FCEP vs oracle for:\n{spec}"
        );
    }
    oracle.len()
}

#[test]
fn listing2_style_sequence() {
    let n = check_psl(
        "PATTERN SEQ(Q e1, V e2)
         WHERE e1.value <= e2.value AND e2.value <= 60
         WITHIN 4 MINUTES",
        31,
        true,
    );
    assert!(n > 0);
}

#[test]
fn keyed_conjunction() {
    let n = check_psl(
        "PATTERN AND(PM10 a, PM25 b)
         WHERE a.id == b.id AND a.value >= 20
         WITHIN 10 MINUTES",
        37,
        false,
    );
    assert!(n > 0);
}

#[test]
fn disjunction() {
    let n = check_psl("PATTERN OR(Temp t, Hum h) WITHIN 5 MINUTES", 41, false);
    assert!(n > 0);
}

#[test]
fn bounded_iteration_with_slide() {
    let n = check_psl(
        "PATTERN ITER(V v, 2) WITHIN 3 MINUTES SLIDE 1 MINUTE",
        43,
        true,
    );
    assert!(n > 0);
}

#[test]
fn negated_sequence_with_absent_filter() {
    check_psl(
        "PATTERN SEQ(Q a, NOT PM10 n, V b)
         WHERE a.value <= 50 AND n.value > 20
         WITHIN 5 MINUTES
         RETURN *",
        47,
        true,
    );
}

#[test]
fn nested_structure() {
    let n = check_psl(
        "PATTERN SEQ(Q a, AND(V b, PM10 c)) WHERE a.value <= 30 WITHIN 6 MINUTES",
        53,
        false,
    );
    assert!(n > 0);
}
