//! Shard-count invariance oracle for the shared-nothing multi-shard
//! runtime: random keyed window-join pipelines executed with 1, 2, and 8
//! shards — the 2- and 8-shard runs with the adaptive rebalancer on an
//! aggressive cadence so hot-slot migrations can strike mid-stream — must
//! deliver the identical sink multiset and late-drop accounting.
//!
//! Because the shard count (and therefore marker traffic, watermark
//! freezes, state handoffs, and stash replays) is the *only* thing that
//! differs, any divergence is a sharding-protocol bug by construction: the
//! single-instance run is the reference semantics.
//!
//! Streams are generated with disorder bounded by the configured watermark
//! lag, so no tuple is ever late. That is the regime in which shard-count
//! invariance is exact: a watermark withheld during a migration freeze can
//! only *delay* lateness verdicts, never flip one, when the lag already
//! covers the disorder.
//!
//! A deterministic companion test forces migrations (two hot keys whose
//! slots collide on one initial shard) and asserts via
//! [`NodeStats::shard_migrations`] that the adaptive path actually ran —
//! the oracle must not pass merely because no migration ever happened.

#![allow(clippy::unwrap_used)] // test code

use std::sync::Arc;
use std::time::Duration as StdDuration;

use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder, SinkId, SourceConfig};
use asp::operator::{cross_join, JoinPredicate, WindowJoinOp};
use asp::runtime::{Executor, ExecutorConfig, RunReport};
use asp::time::{Duration, Timestamp};
use asp::tuple::{MatchKey, TsRule, Tuple};
use asp::window::SlidingWindows;
use proptest::prelude::*;

/// Mirrors `asp::runtime::shard`: 64 fixed slots, multiply-shift hash.
/// Duplicated here (the module is runtime-internal) so the deterministic
/// test can construct keys that collide on one initial shard.
const SHARD_SLOTS: u64 = 64;

fn slot_of(key: u64) -> u64 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % SHARD_SLOTS
}

#[derive(Debug, Clone)]
struct Case {
    /// Per event: (left side?, hot die 0..10 — <7 is hot, raw key,
    /// lag-bounded ts jitter).
    events: Vec<(bool, u32, u32, i64)>,
    /// Two hot sensor ids that soak up most of the traffic.
    hot: (u32, u32),
    /// (size, slide) in minutes.
    win: (i64, i64),
    batch_size: usize,
    watermark_every: usize,
    lag_min: i64,
    columnar: bool,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec((any::<bool>(), 0u32..10, 0u32..24, 0i64..5), 60..300),
        (1u32..1000, 1u32..1000),
        prop_oneof![Just((2i64, 1i64)), Just((4, 4)), Just((6, 2))],
        (
            prop_oneof![Just(1usize), Just(8), Just(64)],
            prop_oneof![Just(1usize), Just(7), Just(32)],
        ),
        (prop_oneof![Just(0i64), Just(4)], any::<bool>()),
    )
        .prop_map(
            |(events, hot, win, (batch_size, watermark_every), (lag_min, columnar))| Case {
                events,
                hot: (hot.0, 1000 + hot.1),
                win,
                batch_size,
                watermark_every,
                lag_min,
                columnar,
            },
        )
}

impl Case {
    /// Materialize one side's event stream. Base timestamps advance 30 s
    /// per generated event (both sides share the global clock), and the
    /// jitter never exceeds the configured watermark lag, so watermarks
    /// cover the disorder and nothing is ever late.
    fn side(&self, left: bool) -> Vec<Event> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, (l, ..))| *l == left)
            .map(|(i, (_, hot_die, raw, jitter))| {
                let id = if *hot_die < 7 {
                    if raw % 2 == 0 {
                        self.hot.0
                    } else {
                        self.hot.1
                    }
                } else {
                    *raw
                };
                let base = Timestamp(i as i64 * 30_000);
                let ts = if self.lag_min == 0 {
                    base
                } else {
                    base.saturating_add(Duration::from_minutes(jitter % (self.lag_min + 1)))
                };
                Event::new(EventType(u16::from(left)), id, ts, (i % 7) as f64)
            })
            .collect()
    }
}

/// Build and run the case's keyed-join pipeline with `shards` instances.
fn run_case(case: &Case, shards: usize, theta: JoinPredicate) -> (RunReport, SinkId) {
    let mut g = GraphBuilder::new();
    let src = |events: Vec<Event>| {
        SourceConfig::new(events)
            .with_watermark_every(case.watermark_every)
            .with_watermark_lag(Duration::from_minutes(case.lag_min))
    };
    let l = g.source_with("l", src(case.side(true)), 1);
    let r = g.source_with("r", src(case.side(false)), 1);
    let (size, slide) = case.win;
    let join = g.nary(
        &[(l, Exchange::Hash), (r, Exchange::Hash)],
        shards,
        Box::new(move |_| {
            Box::new(WindowJoinOp::new(
                "⋈",
                SlidingWindows::new(Duration::from_minutes(size), Duration::from_minutes(slide)),
                theta.clone(),
                TsRule::Max,
            ))
        }),
    );
    if shards > 1 {
        g.shard_node(join);
    }
    let sink = g.sink(join, Exchange::Rebalance);
    let report = Executor::new(ExecutorConfig {
        columnar: case.columnar,
        batch_size: case.batch_size,
        // Hermetic against the CI env matrix: the oracle controls shard
        // counts through graph parallelism, not the env override.
        shards: None,
        env_errors: Vec::new(),
        // Aggressive cadences so migrations can strike mid-stream even in
        // runs lasting a few milliseconds.
        rebalance_interval: Some(StdDuration::from_millis(1)),
        idle_flush: StdDuration::from_millis(1),
        ..ExecutorConfig::default()
    })
    .run(g)
    .expect("shard oracle pipeline runs to completion");
    (report, sink)
}

/// One sink tuple, canonicalized: key, working ts, and full match identity.
type CanonRow = (u64, i64, MatchKey);

fn canon(report: &RunReport, sink: SinkId) -> Vec<CanonRow> {
    let mut out: Vec<_> = report
        .sink(sink)
        .iter()
        .map(|t| (t.key, t.ts.millis(), t.match_key()))
        .collect();
    out.sort();
    out
}

fn late_dropped(report: &RunReport) -> u64 {
    report.nodes.iter().map(|n| n.late_dropped).sum()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// THE invariance oracle: 1, 2, and 8 shards (the latter two with the
    /// adaptive rebalancer live) agree on every random keyed pipeline.
    #[test]
    fn shard_count_is_invisible_in_the_sink(case in arb_case()) {
        let (r1, s1) = run_case(&case, 1, cross_join());
        let want = canon(&r1, s1);
        for shards in [2usize, 8] {
            let (rn, sn) = run_case(&case, shards, cross_join());
            prop_assert_eq!(rn.sink_count(sn), r1.sink_count(s1), "shards={}", shards);
            prop_assert_eq!(&canon(&rn, sn), &want, "shards={}", shards);
            prop_assert_eq!(late_dropped(&rn), late_dropped(&r1), "shards={}", shards);
        }
    }
}

/// Forced-migration companion: two hot keys whose slots collide on the
/// same initial shard, paced so the rebalancer observes enough per-tick
/// traffic to act. The adaptive 8-shard run must (a) actually migrate and
/// (b) still match the single-instance reference exactly.
#[test]
fn adaptive_rebalancing_migrates_and_preserves_output() {
    let shards = 8u64;
    let hot_a = 1u32;
    let sa = slot_of(hot_a as u64);
    // A second hot key on the same initial shard (slots are dealt
    // round-robin: shard = slot % shards) but in a different slot, so the
    // rebalancer can split them.
    let hot_b = (2u32..10_000)
        .find(|&k| {
            let s = slot_of(k as u64);
            s != sa && s % shards == sa % shards
        })
        .expect("a colliding key exists");

    let n = 12_000usize;
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..n {
        let id = match i % 10 {
            0..=3 => hot_a,
            4..=7 => hot_b,
            _ => 20_000 + (i as u32 % 24),
        };
        // 0.5 s per event-pair; value classes keep the cross product small.
        let ev = Event::new(
            EventType(u16::from(i % 2 == 0)),
            id,
            Timestamp((i as i64 / 2) * 500),
            (i / 2 % 40) as f64,
        );
        if i % 2 == 0 {
            left.push(ev);
        } else {
            right.push(ev);
        }
    }
    // Equality on the value class: selective enough that output volume
    // stays small while every window still produces matches.
    let theta: JoinPredicate =
        Arc::new(|l: &Tuple, r: &Tuple| l.head().map(|e| e.value) == r.head().map(|e| e.value));

    let build = |shards: usize| {
        let mut g = GraphBuilder::new();
        let src = |events: Vec<Event>| {
            SourceConfig::new(events)
                .with_watermark_every(32)
                // Paced so the run spans several rebalance ticks with
                // above-threshold per-tick traffic.
                .with_rate(100_000.0)
        };
        let l = g.source_with("l", src(left.clone()), 1);
        let r = g.source_with("r", src(right.clone()), 1);
        let theta = theta.clone();
        let join = g.nary(
            &[(l, Exchange::Hash), (r, Exchange::Hash)],
            shards,
            Box::new(move |_| {
                Box::new(WindowJoinOp::new(
                    "⋈",
                    SlidingWindows::tumbling(Duration::from_minutes(1)),
                    theta.clone(),
                    TsRule::Max,
                ))
            }),
        );
        if shards > 1 {
            g.shard_node(join);
        }
        let sink = g.sink(join, Exchange::Rebalance);
        (g, sink)
    };

    let run = |shards: usize, rebalance: Option<StdDuration>| {
        let (g, sink) = build(shards);
        let report = Executor::new(ExecutorConfig {
            shards: None,
            env_errors: Vec::new(),
            rebalance_interval: rebalance,
            idle_flush: StdDuration::from_millis(1),
            ..ExecutorConfig::default()
        })
        .run(g)
        .expect("skewed pipeline runs to completion");
        (report, sink)
    };

    let (r1, s1) = run(1, None);
    let (r8, s8) = run(8, Some(StdDuration::from_millis(10)));

    assert!(r1.sink_count(s1) > 0, "scenario must produce matches");
    assert_eq!(
        canon(&r8, s8),
        canon(&r1, s1),
        "adaptive 8-shard run diverged"
    );
    assert_eq!(late_dropped(&r8), 0);

    let migrations: u64 = r8.nodes.iter().map(|n| n.shard_migrations).sum();
    assert!(
        migrations >= 1,
        "skewed paced run must trigger at least one migration (got {})",
        migrations
    );
}

/// End-race companion: a stream short enough that migrations publish while
/// the sources are running out, so the drain races the channels' `End`s
/// and the deferred-`End` promotion path (see `asp::sim::config_end_race`,
/// which enumerates this race exhaustively) is exercised against the real
/// threaded runtime. Every attempt must match the single-instance
/// reference; across attempts, at least one must actually migrate.
#[test]
fn migration_racing_stream_end_preserves_output() {
    let shards = 4u64;
    let hot_a = 1u32;
    let sa = slot_of(hot_a as u64);
    let hot_b = (2u32..10_000)
        .find(|&k| {
            let s = slot_of(k as u64);
            s != sa && s % shards == sa % shards
        })
        .expect("a colliding key exists");

    // Short skewed stream: ~6k events at 100k ev/s per source lasts a few
    // rebalance ticks at most, so a migration that starts at all starts
    // near the end of the stream.
    let n = 6_000usize;
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..n {
        // Each left/right pair shares one hot key, alternating pair-wise,
        // so both sides feed both hot slots and every window matches.
        let id = if (i / 2) % 2 == 0 { hot_a } else { hot_b };
        let ev = Event::new(
            EventType(u16::from(i % 2 == 0)),
            id,
            Timestamp((i as i64 / 2) * 500),
            (i / 2 % 40) as f64,
        );
        if i % 2 == 0 {
            left.push(ev);
        } else {
            right.push(ev);
        }
    }
    let theta: JoinPredicate =
        Arc::new(|l: &Tuple, r: &Tuple| l.head().map(|e| e.value) == r.head().map(|e| e.value));

    let run = |shards: usize, rebalance: Option<StdDuration>| {
        let mut g = GraphBuilder::new();
        let src = |events: Vec<Event>| {
            SourceConfig::new(events)
                .with_watermark_every(32)
                .with_rate(100_000.0)
        };
        let l = g.source_with("l", src(left.clone()), 1);
        let r = g.source_with("r", src(right.clone()), 1);
        let theta = theta.clone();
        let join = g.nary(
            &[(l, Exchange::Hash), (r, Exchange::Hash)],
            shards,
            Box::new(move |_| {
                Box::new(WindowJoinOp::new(
                    "⋈",
                    SlidingWindows::tumbling(Duration::from_minutes(1)),
                    theta.clone(),
                    TsRule::Max,
                ))
            }),
        );
        if shards > 1 {
            g.shard_node(join);
        }
        let sink = g.sink(join, Exchange::Rebalance);
        let report = Executor::new(ExecutorConfig {
            shards: None,
            env_errors: Vec::new(),
            rebalance_interval: rebalance,
            idle_flush: StdDuration::from_millis(1),
            ..ExecutorConfig::default()
        })
        .run(g)
        .expect("end-race pipeline runs to completion");
        (report, sink)
    };

    let (r1, s1) = run(1, None);
    let want = canon(&r1, s1);
    assert!(r1.sink_count(s1) > 0, "scenario must produce matches");

    let mut migrated = false;
    for attempt in 0..10 {
        let (r4, s4) = run(4, Some(StdDuration::from_millis(5)));
        assert_eq!(
            canon(&r4, s4),
            want,
            "end-race run diverged (attempt {attempt})"
        );
        assert_eq!(late_dropped(&r4), late_dropped(&r1));
        if r4.nodes.iter().map(|n| n.shard_migrations).sum::<u64>() >= 1 {
            migrated = true;
            break;
        }
    }
    assert!(
        migrated,
        "no attempt migrated — the race window was never exercised"
    );
}
