//! Integration tests for the `asp::sim` bounded model checker: exhaustive
//! exploration of a small shard-migration config, seeded-bug detection
//! with a replayable failing schedule, and regression-file round-trips
//! (byte-identical traces between the explorer's failure and its replay).

#![allow(clippy::unwrap_used)] // test code

use asp::sim::{
    config_by_name, config_end_race, config_small_window_join, explore, run_schedule, ExploreOpts,
    Schedule, SeedBug,
};

fn opts() -> ExploreOpts {
    ExploreOpts {
        time_cap: std::time::Duration::from_secs(300),
        ..ExploreOpts::default()
    }
}

/// The headline acceptance check: a 2-instance / 1-migration config is
/// enumerated exhaustively (no cap hit), with real state/pruning counts,
/// and the protocol holds on every schedule.
#[test]
fn end_race_config_explores_exhaustively_and_clean() {
    let cfg = config_end_race(None);
    let report = explore(&cfg, &opts()).expect("valid config");
    assert!(
        report.exhaustive_and_clean(),
        "capped={} violation={:?}",
        report.capped,
        report.violation.map(|v| v.message)
    );
    assert!(report.states > 100, "states={}", report.states);
    assert!(report.schedules > 10, "schedules={}", report.schedules);
    assert!(
        report.transitions > report.states,
        "every state but the root has an in-edge"
    );
    assert!(report.dedup_pruned > 0, "state merging must engage");
    assert!(report.sleep_pruned > 0, "sleep sets must engage");
    assert!(report.max_depth >= 10, "max_depth={}", report.max_depth);
}

/// Seeded protocol bug: dropping the stash replay at handoff absorption
/// loses tuples on some (not all) interleavings. The explorer must find a
/// failing schedule, and the serialized regression file must reproduce the
/// exact violation with a byte-identical trace.
#[test]
fn seeded_stash_bug_is_caught_and_replayable() {
    let cfg = config_small_window_join(Some(SeedBug::SkipStashReplay));
    let report = explore(&cfg, &opts()).expect("valid config");
    let v = report.violation.expect("seeded bug must be caught");
    assert!(
        v.message.contains("oracle") || v.message.contains("stash"),
        "unexpected diagnosis: {}",
        v.message
    );
    assert!(!v.schedule.0.is_empty());

    // Serialize → write → parse back → re-run: same violation, same trace.
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("sim-regressions");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join(format!("{}.txt", cfg.name));
    std::fs::write(&file, v.schedule.render_regression(&cfg.name, &v.message)).unwrap();

    let parsed = Schedule::parse_regression(&std::fs::read_to_string(&file).unwrap())
        .expect("regression file parses");
    assert_eq!(parsed, v.schedule, "schedule survives the file round-trip");

    let replayed = run_schedule(&cfg, &parsed).expect_err("violation must reproduce");
    assert_eq!(replayed.message, v.message);
    assert_eq!(
        replayed.trace, v.trace,
        "replay trace must be byte-identical"
    );

    // The clean protocol passes the very same schedule.
    let clean = config_small_window_join(None);
    run_schedule(&clean, &parsed).expect("clean protocol holds on the failing schedule");
}

/// Second seeded bug, different failure mode: promoting a deferred `End`
/// before the migration resolves delivers messages to a finished instance
/// on some interleavings.
#[test]
fn seeded_eager_end_bug_is_caught() {
    let cfg = config_end_race(Some(SeedBug::EagerEndPromotion));
    let report = explore(&cfg, &opts()).expect("valid config");
    let v = report.violation.expect("seeded bug must be caught");
    // And the failure replays identically straight from the in-memory
    // schedule (no file round-trip needed).
    let replayed = run_schedule(&cfg, &v.schedule).expect_err("violation must reproduce");
    assert_eq!(replayed.message, v.message);
    assert_eq!(replayed.trace, v.trace);
}

/// Every named config is reachable through the CLI lookup surface and
/// validates; unknown names are rejected.
#[test]
fn named_configs_validate_and_resolve() {
    for name in [
        "small-window-join",
        "end-race",
        "interval-join",
        "two-migrations",
    ] {
        let cfg = config_by_name(name, None).expect("known config");
        assert_eq!(cfg.name, name);
        cfg.validate().expect("named configs validate");
    }
    assert!(config_by_name("no-such-config", None).is_none());
}
