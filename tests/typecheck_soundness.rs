//! Soundness of the static schema & partition-safety analyzer
//! (`cep2asp::typecheck`), from both directions:
//!
//! * **Acceptance is sound** — every plan the mapper emits typechecks
//!   clean, and running it with the feature-independent runtime
//!   conformance checker enabled (`PhysicalConfig::schema_conformance`)
//!   observes zero violations: each tuple crossing each edge matches the
//!   statically inferred row schema and key provenance.
//! * **Rejection is sound** — minimally broken plans (a mis-keyed `ByKey`
//!   join, a non-permutation projection layout) are rejected *statically*
//!   with the right `S`-code before anything runs.

#![allow(clippy::unwrap_used)]

use asp::event::{Event, EventType};
use asp::runtime::{Executor, ExecutorConfig};
use asp::time::{Duration, Timestamp};
use cep2asp::exec::{run_pattern, split_by_type};
use cep2asp::{
    build_pipeline, typecheck, BuildError, JoinWindowing, LogicalPlan, MapperOptions, Partitioning,
    PhysicalConfig, PlanNode, TypeCode, TypedNode,
};
use proptest::prelude::*;
use sea::pattern::{builders, Leaf, Pattern, WindowSpec};
use sea::predicate::Predicate;

const TYPES: [(EventType, &str); 3] = [
    (EventType(0), "A"),
    (EventType(1), "B"),
    (EventType(2), "C"),
];

fn arb_event() -> impl Strategy<Value = Event> {
    (0u16..3, 0u32..3, 0i64..40, 0u32..100).prop_map(|(t, id, minute, v)| {
        Event::new(EventType(t), id, Timestamp::from_minutes(minute), v as f64)
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(arb_event(), 5..60)
}

#[derive(Debug, Clone)]
enum PatternShape {
    Seq(Vec<usize>),
    And(Vec<usize>),
    Iter {
        t: usize,
        m: usize,
    },
    Nseq {
        first: usize,
        absent: usize,
        last: usize,
    },
}

fn arb_shape() -> impl Strategy<Value = PatternShape> {
    prop_oneof![
        proptest::collection::vec(0usize..3, 2..4).prop_map(PatternShape::Seq),
        proptest::collection::vec(0usize..3, 2..3).prop_map(PatternShape::And),
        (0usize..3, 2usize..4).prop_map(|(t, m)| PatternShape::Iter { t, m }),
        (0usize..3, 0usize..3, 0usize..3)
            .prop_filter("absent must differ from first", |(f, a, _)| f != a)
            .prop_map(|(first, absent, last)| PatternShape::Nseq {
                first,
                absent,
                last
            }),
    ]
}

fn make_pattern(shape: &PatternShape, w_minutes: i64, add_key: bool) -> Pattern {
    let w = WindowSpec::minutes(w_minutes);
    let pattern = match shape {
        PatternShape::Seq(ts) => {
            let types: Vec<_> = ts.iter().map(|&i| TYPES[i]).collect();
            builders::seq(&types, w, vec![])
        }
        PatternShape::And(ts) => {
            let types: Vec<_> = ts.iter().map(|&i| TYPES[i]).collect();
            builders::and(&types, w, vec![])
        }
        PatternShape::Iter { t, m } => {
            let (etype, name) = TYPES[*t];
            builders::iter(etype, name, *m, w, vec![])
        }
        PatternShape::Nseq {
            first,
            absent,
            last,
        } => builders::nseq(
            TYPES[*first],
            Leaf::new(TYPES[*absent].0, TYPES[*absent].1, "n"),
            TYPES[*last],
            w,
            vec![],
        ),
    };
    if add_key && pattern.positions() >= 2 {
        let mut preds = pattern.predicates.clone();
        preds.push(Predicate::same_id(
            pattern.positions() - 2,
            pattern.positions() - 1,
        ));
        return Pattern::new(
            pattern.name.clone(),
            pattern.expr.clone(),
            pattern.window,
            preds,
        )
        .expect("valid");
    }
    pattern
}

/// Every node of the typed tree must carry a complete verdict: at least
/// one row-schema variant and non-empty columns in each.
fn assert_fully_typed(node: &TypedNode) {
    assert!(
        !node.schema.variants.is_empty(),
        "node {} has no inferred schema",
        node.label
    );
    for v in &node.schema.variants {
        assert!(!v.columns.is_empty(), "empty row schema at {}", node.label);
    }
    for c in &node.children {
        assert_fully_typed(c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
    })]

    /// Every plan the mapper emits — across plain, O1, O2, O3, O1+O3 —
    /// typechecks clean, and every node gets a schema and a safety
    /// verdict.
    #[test]
    fn translated_plans_typecheck_clean(
        shape in arb_shape(),
        w in 2i64..8,
        add_key in any::<bool>(),
    ) {
        let pattern = make_pattern(&shape, w, add_key);
        for (label, opts) in [
            ("plain", MapperOptions::plain()),
            ("O1", MapperOptions::o1()),
            ("O2", MapperOptions::o2()),
            ("O3", MapperOptions::o3()),
            ("O1+O3", MapperOptions::o1().and_o3()),
        ] {
            let plan = cep2asp::translate(&pattern, &opts).expect("translates");
            let res = typecheck(&plan);
            prop_assert!(
                res.is_clean(),
                "{} plan fails typecheck:\n{}",
                label,
                res.render(),
            );
            assert_fully_typed(&res.root);
        }
    }

    /// Accepted plans run clean under the runtime conformance checker:
    /// with `schema_conformance` on, every edge asserts each tuple
    /// against the inferred schema and key — a violation panics the
    /// worker and fails the run, so success means zero violations.
    #[test]
    fn accepted_plans_have_zero_runtime_violations(
        events in arb_stream(),
        shape in arb_shape(),
        w in 2i64..8,
        add_key in any::<bool>(),
    ) {
        let pattern = make_pattern(&shape, w, add_key);
        let sources = split_by_type(&events);
        let phys = PhysicalConfig {
            schema_conformance: true,
            ..Default::default()
        };
        for (label, opts) in [
            ("plain", MapperOptions::plain()),
            ("O2", MapperOptions::o2()),
            ("O1+O3", MapperOptions::o1().and_o3()),
        ] {
            let run = run_pattern(&pattern, &opts, &sources, &phys, &ExecutorConfig::default());
            prop_assert!(
                run.is_ok(),
                "{} run violated the inferred schema: {}",
                label,
                run.err().map(|e| e.to_string()).unwrap_or_default(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Golden rejections: minimally broken plans carry exactly one defect each
// and are refused statically, before a single tuple flows.
// ---------------------------------------------------------------------------

fn scan(t: u16, var: usize) -> PlanNode {
    PlanNode::Scan {
        etype: EventType(t),
        type_name: format!("T{t}"),
        leaf: Leaf::new(EventType(t), format!("T{t}"), format!("e{}", var + 1)),
        var,
        predicates: vec![],
    }
}

fn global_join(left: PlanNode, right: PlanNode) -> PlanNode {
    PlanNode::Join {
        left: Box::new(left),
        right: Box::new(right),
        windowing: JoinWindowing::Sliding {
            size: Duration::from_minutes(4),
            slide: Duration::from_minutes(1),
        },
        partitioning: Partitioning::Global,
        order_pairs: vec![],
        predicates: vec![],
        span_ms: 4 * asp::time::MINUTE_MS,
        ats_check: None,
        key_pair: None,
    }
}

fn plan_of(root: PlanNode) -> LogicalPlan {
    LogicalPlan {
        root,
        positions: 2,
        mapping: "golden".into(),
        window: WindowSpec::minutes(4),
    }
}

/// A `ByKey` join whose key pair is not backed by any equi-key predicate:
/// partitioning by it would silently drop cross-sensor matches. Rejected
/// statically with S005 — and refused by the physical builder before any
/// tuple flows.
#[test]
fn miskeyed_join_is_rejected_statically() {
    let mut root = global_join(scan(0, 0), scan(1, 1));
    if let PlanNode::Join {
        partitioning,
        key_pair,
        ..
    } = &mut root
    {
        *partitioning = Partitioning::ByKey;
        *key_pair = Some((0, 1));
    }
    let plan = plan_of(root);
    let res = typecheck(&plan);
    let codes: Vec<TypeCode> = res.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![TypeCode::JoinKeyNotCoPartitioned]);

    // The same plan keyed by an actual equi-key predicate is accepted.
    let mut ok = global_join(scan(0, 0), scan(1, 1));
    if let PlanNode::Join {
        partitioning,
        key_pair,
        predicates,
        ..
    } = &mut ok
    {
        *partitioning = Partitioning::ByKey;
        *key_pair = Some((0, 1));
        predicates.push(Predicate::same_id(0, 1));
    }
    assert!(typecheck(&plan_of(ok)).is_clean());

    // Pre-run gate: the builder refuses to lower the rejected plan.
    let phys = PhysicalConfig {
        schema_conformance: true,
        ..Default::default()
    };
    let sources = split_by_type(&[]);
    match build_pipeline(&plan, &sources, &phys) {
        Err(BuildError::SchemaRejected(msg)) => {
            assert!(msg.contains("S005"), "{msg}");
        }
        Err(other) => panic!("expected SchemaRejected, got {other}"),
        Ok(_) => panic!("mis-keyed plan must not lower"),
    }
}

/// A projection whose layout is not a permutation of its input: applying
/// it would scramble constituent positions. Rejected statically with S004.
#[test]
fn bad_projection_layout_is_rejected_statically() {
    let root = PlanNode::Project {
        input: Box::new(global_join(scan(0, 0), scan(1, 1))),
        layout: vec![0, 2],
    };
    let plan = plan_of(root);
    let res = typecheck(&plan);
    let codes: Vec<TypeCode> = res.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![TypeCode::ProjectionLayoutMismatch]);

    // A true permutation is accepted, lowers, and runs: the physical
    // layer reorders the constituents and the conformance checker agrees
    // with the inferred (reordered) schema.
    let ok_plan = plan_of(PlanNode::Project {
        input: Box::new(global_join(scan(0, 0), scan(1, 1))),
        layout: vec![1, 0],
    });
    let res = typecheck(&ok_plan);
    assert!(res.is_clean(), "{}", res.render());
    assert_eq!(res.root.schema.variants[0].layout(), vec![1, 0]);
    let events = vec![
        Event::new(EventType(0), 1, Timestamp::from_minutes(0), 10.0),
        Event::new(EventType(1), 2, Timestamp::from_minutes(1), 20.0),
    ];
    let phys = PhysicalConfig {
        schema_conformance: true,
        ..Default::default()
    };
    let (graph, sink) = build_pipeline(&ok_plan, &split_by_type(&events), &phys).expect("lowers");
    // With conformance on, the checker spliced onto the Project's output
    // edge asserts the *reordered* schema (B before A); the run succeeding
    // proves the physical permutation matches the inferred layout. The
    // sink itself re-canonicalizes to position order, so only presence is
    // asserted there.
    let report = Executor::new(ExecutorConfig::default())
        .run(graph)
        .expect("runs");
    assert!(
        !report.sink(sink).is_empty(),
        "projection dropped the match"
    );
}
