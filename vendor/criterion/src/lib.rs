//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides a minimal timing harness with the same surface the workspace's
//! benches use: `criterion_group!` (both forms), `criterion_main!`,
//! benchmark groups with throughput annotation, `bench_function` /
//! `bench_with_input`, and `black_box`. It reports mean wall-clock time per
//! iteration (and throughput where annotated) without criterion's
//! statistical machinery.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Prevent the optimizer from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Top-level benchmark driver, passed to each group function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small by default: this stand-in is for smoke-timing, not stats.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Benchmark a closure directly, outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, None, &mut f);
        self
    }
}

/// A named set of benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time a closure under `<group>/<name>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Time a closure that borrows a fixed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&full, self.sample_size, self.throughput, &mut g);
        self
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the hot loop.
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total_ns = start.elapsed().as_nanos();
        self.iters = self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples,
        total_ns: 0,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name}: no iterations recorded");
        return;
    }
    let per_iter_ns = b.total_ns as f64 / b.iters as f64;
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (per_iter_ns / 1e9);
            format!("  ({:.2} Melem/s)", per_sec / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (per_iter_ns / 1e9);
            format!("  ({:.2} MiB/s)", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name}: {:.3} ms/iter{extra}", per_iter_ns / 1e6);
}

/// Define a benchmark group function. Supports both the positional form
/// `criterion_group!(benches, a, b)` and the configured form with
/// `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("tiny");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &k| {
            b.iter(|| (0..100u64).map(|x| x * k).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
