//! A bounded multi-producer multi-consumer channel with timeouts.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

/// Error returned by [`Sender::send_timeout`]; carries the unsent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout.
    Timeout(T),
    /// All receivers dropped.
    Disconnected(T),
}

/// Error returned by [`Sender::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// The sending half of a bounded channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel with capacity `cap` (clamped to at least 1).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap: cap.max(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send, blocking for at most `timeout` while the channel is full.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if inner.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            if inner.queue.len() < self.shared.cap {
                inner.queue.push_back(msg);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(msg));
            }
            let (guard, _) = self
                .shared
                .not_full
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Send, blocking until space is available or all receivers are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut msg = msg;
        loop {
            match self.send_timeout(msg, Duration::from_millis(100)) {
                Ok(()) => return Ok(()),
                Err(SendTimeoutError::Timeout(m)) => msg = m,
                Err(SendTimeoutError::Disconnected(m)) => return Err(SendError(m)),
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders += 1;
        drop(inner);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking for at most `timeout` while the channel is empty.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Pop a queued message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued (like upstream
    /// `crossbeam_channel::Receiver::len`). A snapshot: the value may be
    /// stale by the time the caller acts on it; intended for telemetry
    /// gauges, not for synchronization.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// True when no message is queued (snapshot, see [`Receiver::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Receive, blocking until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            match self.recv_timeout(Duration::from_millis(100)) {
                Ok(msg) => return Ok(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(RecvError),
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = bounded(4);
        tx.send_timeout(1, Duration::from_millis(10)).unwrap();
        tx.send_timeout(2, Duration::from_millis(10)).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn full_channel_times_out() {
        let (tx, _rx) = bounded(1);
        tx.send_timeout(1, Duration::from_millis(5)).unwrap();
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(5)),
            Err(SendTimeoutError::Timeout(2))
        );
    }

    #[test]
    fn disconnect_propagates_both_ways() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert_eq!(
            tx.send_timeout(7, Duration::from_millis(5)),
            Err(SendTimeoutError::Disconnected(7))
        );
    }

    #[test]
    fn try_recv_never_blocks() {
        let (tx, rx) = bounded(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send_timeout(9, Duration::from_millis(5)).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_backpressure() {
        let (tx, rx) = bounded(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < 100 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
