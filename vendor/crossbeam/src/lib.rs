//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API subset the workspace uses: a bounded MPMC
//! channel with `send_timeout`/`recv_timeout` and disconnect semantics,
//! built on `std::sync::{Mutex, Condvar}`. Semantics match the real
//! `crossbeam-channel` for this subset: sends fail once every receiver is
//! gone, receives fail once every sender is gone and the queue drained.

pub mod channel;
