//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset the workspace uses: a `Mutex` whose `lock()` returns
//! the guard directly (no poisoning), matching `parking_lot` semantics by
//! ignoring poison from the underlying `std::sync::Mutex`.

use std::sync::MutexGuard as StdGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. A panic while the lock
    /// was held elsewhere does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrow the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn panics_do_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
