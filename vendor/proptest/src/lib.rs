//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the subset the workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_filter` /
//! `boxed`, range and tuple strategies, `collection::vec`, `any::<bool>()`,
//! `prop_oneof!`, and the `proptest!` runner macro with
//! `prop_assert*`/`prop_assume!`. Differences from upstream: generation is
//! deterministic per test name (good for CI), and failing inputs are
//! printed but **not shrunk**.

/// Strategy trait and combinators.
pub mod strategy {
    use rand::{Rng, StdRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: Debug;

        /// Produce one value from `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Keep only values for which `f` returns true (retrying
        /// internally; panics with `reason` if nothing passes).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                reason: reason.into(),
                f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe mirror of [`Strategy`] for boxing.
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy, produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.reason
            );
        }
    }

    /// Uniform choice between same-valued strategies (see `prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Build a union over the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let arm = rng.gen_range(0..self.0.len());
            self.0[arm].generate(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(i64, u64, i32, u32, u16, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// "Just this value" strategy, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::{Rng, StdRng};

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Generate an arbitrary value of this type.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }

    macro_rules! arb_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    arb_ints!(u16, u32, i32, i64);

    /// Strategy over a whole type's domain; see [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::{Rng, StdRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` values with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration and case-level error type.
pub mod test_runner {
    /// Runner configuration; only the fields the workspace sets exist.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
        /// Accepted for compatibility; this stand-in does not shrink.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Outcome of one generated case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it does not count.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    use std::io::Write;
    use std::path::PathBuf;

    /// Persisted regression seeds for one property test, stored under
    /// `proptest-regressions/<test file>.txt` in the crate under test
    /// (mirroring upstream proptest's failure persistence). Each case draws
    /// its inputs from a dedicated RNG seeded with a single `u64`, so a
    /// failing case is replayable from that one number: the runner appends
    /// it here on failure, and every future run replays the file's seeds
    /// before generating fresh cases.
    ///
    /// File format: `#` comment lines, then one `cc <seed> <test path>`
    /// line per failure.
    pub struct Persistence {
        path: PathBuf,
        name: String,
    }

    impl Persistence {
        /// Locate the regression file for `module_path!()`/test pair.
        pub fn for_test(module_path: &str, test: &str) -> Persistence {
            let file = module_path.split("::").next().unwrap_or(module_path);
            let dir = std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("."));
            Persistence {
                path: dir.join("proptest-regressions").join(format!("{file}.txt")),
                name: format!("{module_path}::{test}"),
            }
        }

        /// Persisted seeds for this test, oldest first.
        pub fn seeds(&self) -> Vec<u64> {
            let Ok(text) = std::fs::read_to_string(&self.path) else {
                return Vec::new();
            };
            text.lines()
                .filter_map(|l| {
                    let rest = l.trim().strip_prefix("cc ")?;
                    let (seed, name) = rest.split_once(' ')?;
                    if name.trim() == self.name {
                        seed.parse().ok()
                    } else {
                        None
                    }
                })
                .collect()
        }

        /// Append a failing seed (deduplicated against existing entries).
        pub fn record(&self, seed: u64) {
            if self.seeds().contains(&seed) {
                return;
            }
            if let Some(dir) = self.path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let header = if self.path.exists() {
                ""
            } else {
                "# Seeds for failing proptest cases, replayed before fresh generation\n\
                 # on every run. Format: `cc <case seed> <test path>`.\n"
            };
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
            {
                let _ = writeln!(f, "{header}cc {seed} {}", self.name);
            }
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// Re-exported so `proptest!` expansions resolve the RNG without user
// crates depending on `rand` themselves.
pub use ::rand;

/// Derive a stable per-test RNG seed from the test's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, unlike `DefaultHasher`.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reject the current case (it will not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Each inner `fn` runs `cases` times with freshly
/// generated inputs; failures print the inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let persist = $crate::test_runner::Persistence::for_test(
                    module_path!(),
                    stringify!($name),
                );
                let persisted = persist.seeds();
                let mut rng =
                    <$crate::rand::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                        $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                    );
                let mut replay_idx: usize = 0;
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                loop {
                    // Checked-in regression seeds replay first (they do not
                    // count toward `cases`); then fresh cases, each seeded
                    // from its own u64 so a failure persists as one number.
                    let (case_seed, replay) = if replay_idx < persisted.len() {
                        replay_idx += 1;
                        (persisted[replay_idx - 1], true)
                    } else if passed < cfg.cases {
                        attempts += 1;
                        assert!(
                            attempts <= cfg.cases.saturating_mul(50).saturating_add(1000),
                            "proptest: too many rejected cases (prop_assume too strict?)"
                        );
                        ($crate::rand::RngCore::next_u64(&mut rng), false)
                    } else {
                        break;
                    };
                    let mut case_rng =
                        <$crate::rand::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                            case_seed,
                        );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$strat, &mut case_rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => {
                            if !replay {
                                passed += 1;
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            persist.record(case_seed);
                            let label = if replay {
                                "persisted regression".to_string()
                            } else {
                                format!("case {}/{}", passed + 1, cfg.cases)
                            };
                            panic!(
                                "proptest {label} (seed {case_seed}) failed: {msg}\n  inputs: {inputs}"
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn map_filter_and_ranges_compose(
            v in crate::collection::vec((0u32..3, 0i64..10).prop_map(|(a, b)| (a, b * 2)), 0..8),
            flag in any::<bool>(),
            x in 1i64..5,
        ) {
            prop_assume!(x != 4);
            prop_assert!((1..4).contains(&x));
            for (a, b) in &v {
                prop_assert!(*a < 3);
                prop_assert_eq!(*b % 2, 0, "doubled value {} must be even", b);
            }
            let _ = flag;
        }

        #[test]
        fn oneof_hits_every_arm(picks in crate::collection::vec(
            prop_oneof![
                (0usize..1).prop_map(|_| "a"),
                (0usize..1).prop_map(|_| "b"),
                (0usize..1).prop_map(|_| "c"),
            ],
            60..61,
        )) {
            for arm in ["a", "b", "c"] {
                prop_assert!(picks.contains(&arm), "arm {} never generated", arm);
            }
        }
    }

    #[test]
    fn seed_is_stable() {
        assert_eq!(crate::seed_for("x"), crate::seed_for("x"));
        assert_ne!(crate::seed_for("x"), crate::seed_for("y"));
    }
}
