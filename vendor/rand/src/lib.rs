//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the deterministic subset the workspace uses: a seedable RNG
//! (`StdRng::seed_from_u64`, SplitMix64 core) and `Rng::gen_range` over
//! integer and float ranges. The stream differs from upstream `rand`, but
//! all workloads only require determinism for a fixed seed, not a specific
//! stream.

use std::ops::{Range, RangeInclusive};

/// Types that can construct an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Element types [`Rng::gen_range`] can sample uniformly.
///
/// The blanket [`SampleRange`] impls below are generic over this trait so a
/// range's element type uniquely determines the sample type, matching the
/// upstream `rand` inference behaviour for integer literals.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]` (`true`).
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Sampling ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic seedable RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: fast, full-period, and fine for workload synthesis.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub use rngs::StdRng;

fn uniform_u64_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Modulo bias is negligible for the small bounds the workloads use,
    // and determinism per seed is all that matters here.
    rng.next_u64() % bound
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    (hi as i128 - lo as i128 + 1) as u64
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u64
                };
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..=5);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(49.4..51.7);
            assert!((49.4..51.7).contains(&f));
            let n = rng.gen_range(0u32..10);
            assert!(n < 10);
        }
    }

    #[test]
    fn negative_float_ranges_work() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&v));
        }
    }

    #[test]
    fn integer_literals_infer_from_use() {
        // Mirrors `ts += rng.gen_range(3..=5) * MINUTE_MS` in workloads.
        let mut rng = StdRng::seed_from_u64(1);
        let ms: i64 = rng.gen_range(3..=5) * 60_000i64;
        assert!((180_000..=300_000).contains(&ms));
    }
}
