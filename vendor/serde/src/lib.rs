//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides a value-tree serialization model covering exactly what the
//! workspace derives: named structs, newtype structs, and unit enums, with
//! scalar / `Option` / `Vec` / tuple / `BTreeMap<String, _>` fields. The
//! [`Serialize`] and [`Deserialize`] traits convert to and from [`Value`],
//! and `serde_json` renders/parses that tree. Derive macros are re-exported
//! from the companion `serde_derive` stand-in.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory serialization tree, the intermediate form between typed
/// values and JSON text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (distinct so `u64::MAX` survives).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the serialization tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self`, reporting a shape mismatch as [`DeError`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

static NULL: Value = Value::Null;

/// Look up a field of an object `Value`, treating a missing key as `null`
/// (this is how `#[serde(default)]`-style fields deserialize).
pub fn de_field<'a>(v: &'a Value, name: &str) -> &'a Value {
    match v {
        Value::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL),
        _ => &NULL,
    }
}

/// Extract the element at `idx` of an array `Value`.
pub fn de_index(v: &Value, idx: usize) -> Result<&Value, DeError> {
    match v {
        Value::Array(items) => items
            .get(idx)
            .ok_or_else(|| DeError(format!("array too short: no index {idx}"))),
        other => Err(DeError(format!("expected array, got {other:?}"))),
    }
}

impl Serialize for Value {
    /// Identity: a `Value` serializes as itself, so dynamically-shaped
    /// JSON (telemetry blocks, re-parsed documents) can be embedded in
    /// derived structs.
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    /// Identity: any JSON document deserializes losslessly into `Value`.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self as i128 >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!(
                        "expected integer for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    // JSON prints 5.0 as "5", which parses back as an integer.
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError(format!(
                        "expected number for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            // A missing `#[serde(default)]` array field deserializes empty.
            Value::Null => Ok(Vec::new()),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            Value::Null => Ok(BTreeMap::new()),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($name::from_value(de_index(v, $idx)?)?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&Value::Int(5)), Ok(5.0));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_and_vec_treat_null_as_default() {
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Vec::<u64>::from_value(&Value::Null), Ok(Vec::new()));
    }

    #[test]
    fn missing_object_field_reads_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(de_field(&obj, "a"), &Value::Int(1));
        assert_eq!(de_field(&obj, "b"), &Value::Null);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u64, 2usize, 3.5f64);
        assert_eq!(<(u64, usize, f64)>::from_value(&t.to_value()), Ok(t));
    }
}
