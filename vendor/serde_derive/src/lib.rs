//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to crates.io (so no `syn`/`quote`);
//! this crate parses the item token stream by hand. It supports exactly the
//! shapes the workspace derives on: structs with named fields, tuple
//! structs, and enums of unit variants. `#[serde(...)]` field attributes are
//! accepted and ignored — the value model in the vendored `serde` already
//! treats missing fields as defaults, which is the behaviour the workspace
//! relies on.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derive `serde::Serialize` (value-tree flavour) for a supported item.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                     serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str(match self {{ {} }}.to_string())\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().expect("derived Serialize impl must parse")
}

/// Derive `serde::Deserialize` (value-tree flavour) for a supported item.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::de_field(v, \"{f}\"))?")
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                     Ok({name}(serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Deserialize::from_value(serde::de_index(v, {i})?)?"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {},\n\
                                 other => Err(serde::DeError(format!(\n\
                                     \"unknown {name} variant {{other}}\"))),\n\
                             }},\n\
                             other => Err(serde::DeError(format!(\n\
                                 \"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().expect("derived Deserialize impl must parse")
}

/// Parse the item a derive was attached to. Panics (compile error) on
/// shapes the stand-in does not support, so misuse is loud, not silent.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in does not support generic items ({name})");
    }

    match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::UnitEnum {
                name,
                variants: parse_unit_variants(g.stream()),
            }
        }
        (kw, other) => panic!("unsupported item shape for {name}: {kw} followed by {other:?}"),
    }
}

/// Advance past any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of `struct S { a: T, b: U }`, skipping attributes and types
/// (commas inside generic angle brackets do not split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        }
        i += 1;
        // Skip `: Type` up to the next comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Arity of `struct S(T, U);` — comma-separated segments at angle depth 0.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => arity += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount; none of the workspace types use one,
    // but be robust anyway.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        arity -= 1;
    }
    arity
}

/// Variant names of `enum E { A, B }`; data-carrying variants are rejected.
fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        }
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            Some(TokenTree::Group(_)) => {
                panic!("serde_derive stand-in supports unit enum variants only")
            }
            other => panic!("expected `,` after variant, got {other:?}"),
        }
    }
    variants
}
