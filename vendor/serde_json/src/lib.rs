//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no access to crates.io; this vendored crate
//! renders the vendored `serde` [`Value`] tree as JSON text
//! and parses it back with a small recursive-descent parser. It covers the
//! JSON subset the workspace produces: objects, arrays, strings with
//! escapes, integers, floats, booleans, and null.

use std::fmt;
use std::io;

use serde::{DeError, Deserialize, Serialize, Value};

/// Error from parsing or shaping JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent,
/// like upstream `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serialize `value` as JSON into an [`io::Write`] (no trailing newline).
pub fn to_writer<W: io::Write, T: Serialize>(mut writer: W, value: &T) -> io::Result<()> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    writer.write_all(out.as_bytes())
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest round-trippable form.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null"); // JSON has no NaN/inf, like serde_json
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, depth: usize) {
    fn indent(out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        // Empty containers and scalars render as in compact mode.
        _ => write_value(out, v),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (multi-byte sequences are
                    // copied through unchanged).
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error("empty string tail".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number bytes".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printing_round_trips_and_indents() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::UInt(2), Value::UInt(3)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let mut pretty = String::new();
        write_value_pretty(&mut pretty, &v, 0);
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ],\n  \"empty\": []\n}"
        );
        let mut p = Parser {
            bytes: pretty.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_round_trips() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"quoted\" λ".into())),
            ("n".into(), Value::UInt(42)),
            ("neg".into(), Value::Int(-7)),
            ("f".into(), Value::Float(1.5)),
            ("none".into(), Value::Null),
            (
                "arr".into(),
                Value::Array(vec![Value::Bool(true), Value::Bool(false)]),
            ),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v);
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(u64, usize, f64)> = vec![(1, 2, 3.5), (4, 5, 6.0)];
        let s = to_string(&v).unwrap();
        let back: Vec<(u64, usize, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whole_floats_parse_back_as_integers() {
        // `6.0` prints as "6"; numeric deserializers must accept that.
        let s = to_string(&6.0f64).unwrap();
        assert_eq!(s, "6");
        let f: f64 = from_str(&s).unwrap();
        assert_eq!(f, 6.0);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1 garbage").is_err());
    }
}
